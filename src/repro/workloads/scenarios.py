"""Canned scenarios, starting with the paper's motivating Example 1.1."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..core.distributions import DiscreteDistribution, two_point
from ..core.markov import MarkovParameter, sticky_chain
from ..engine.environment import multiprogramming_memory
from ..plans.query import JoinPredicate, JoinQuery, RelationSpec

__all__ = [
    "example_1_1",
    "reporting_chain",
    "warehouse_star",
    "long_running_batch",
    "snowflake_analytics",
    "elastic_cloud_batch",
]


def example_1_1() -> Tuple[JoinQuery, DiscreteDistribution]:
    """The paper's motivating example, verbatim.

    A(1,000,000 pages) ⋈ B(400,000 pages), result 3,000 pages, ordered by
    the join column; memory is 2000 pages 80% of the time and 700 pages
    20% of the time.  Plan 1 (sort-merge, order for free) is the LSC
    choice at both the mean (1740) and the mode (2000); Plan 2 (Grace
    hash + sort) is the LEC choice.
    """
    query = JoinQuery(
        relations=[
            RelationSpec(name="A", pages=1_000_000.0),
            RelationSpec(name="B", pages=400_000.0),
        ],
        predicates=[
            JoinPredicate(
                left="A",
                right="B",
                selectivity=1e-9,
                label="A=B",
                result_pages_override=3000.0,
            )
        ],
        required_order="A=B",
    )
    return query, two_point(2000.0, 0.8, 700.0)


def reporting_chain() -> Tuple[JoinQuery, DiscreteDistribution]:
    """A 4-relation reporting query on a loaded shared server.

    orders ⋈ lineitems ⋈ products ⋈ suppliers as a chain, with memory
    driven by a multiprogramming model (16 concurrent query slots at 60%
    load on a 4000-page pool).
    """
    rels = [
        RelationSpec(name="orders", pages=80_000.0),
        RelationSpec(name="lineitems", pages=300_000.0),
        RelationSpec(name="products", pages=20_000.0),
        RelationSpec(name="suppliers", pages=4_000.0),
    ]
    preds = [
        JoinPredicate("orders", "lineitems", selectivity=1.2e-7, label="o=l"),
        JoinPredicate("lineitems", "products", selectivity=5e-8, label="l=p"),
        JoinPredicate("products", "suppliers", selectivity=2.5e-7, label="p=s"),
    ]
    memory = multiprogramming_memory(
        total_pages=4000.0,
        per_query_pages=500.0,
        max_concurrent=8,
        load=0.35,
        floor_pages=64.0,
    )
    return (
        JoinQuery(rels, preds, required_order="o=l", rows_per_page=100),
        memory,
    )


def warehouse_star(require_order: bool = True) -> Tuple[JoinQuery, DiscreteDistribution]:
    """A star-schema aggregation feed: fact table with three dimensions.

    The result must be ordered (feeding a merge-based aggregation), which
    sets up the classic sort-merge-vs-hash tension at every memory level.
    """
    rels = [
        RelationSpec(name="sales", pages=500_000.0),
        RelationSpec(name="stores", pages=500.0),
        RelationSpec(name="items", pages=12_000.0),
        RelationSpec(name="dates", pages=100.0),
    ]
    preds = [
        JoinPredicate("sales", "stores", selectivity=2e-5, label="s=st"),
        JoinPredicate("sales", "items", selectivity=8.5e-7, label="s=it"),
        JoinPredicate("sales", "dates", selectivity=1e-4, label="s=dt"),
    ]
    memory = two_point(3000.0, 0.7, 500.0)
    return (
        JoinQuery(
            rels,
            preds,
            required_order="s=it" if require_order else None,
            rows_per_page=100,
        ),
        memory,
    )


def long_running_batch() -> Tuple[JoinQuery, MarkovParameter]:
    """A long batch join whose memory drifts *during* execution.

    Five relations joined in a chain; memory follows a sticky chain whose
    stationary marginal is the bimodal 2500/600 mix — temporal
    correlation without marginal drift, isolating the Section 3.5 effect.
    """
    rels = [
        RelationSpec(name=f"T{i}", pages=p)
        for i, p in enumerate([150_000.0, 90_000.0, 40_000.0, 15_000.0, 2_000.0])
    ]
    preds = [
        JoinPredicate(
            rels[i].name,
            rels[i + 1].name,
            selectivity=1.0 / (rels[i].pages * 100),
            label=f"t{i}={i+1}",
        )
        for i in range(4)
    ]
    marginal = two_point(2500.0, 0.65, 600.0)
    chain = sticky_chain(marginal, stickiness=0.8)
    return JoinQuery(rels, preds, rows_per_page=100), chain


def snowflake_analytics() -> Tuple[JoinQuery, DiscreteDistribution]:
    """A snowflake schema: fact → dimension → sub-dimension chains.

    lineitem joins orders and part; part joins supplier region via a
    shared-attribute chain, so the sort-merge/interesting-order machinery
    has something to chew on.  Memory comes from a 12-slot
    multiprogramming model.
    """
    rels = [
        RelationSpec(name="lineitem", pages=600_000.0),
        RelationSpec(name="orders", pages=150_000.0),
        RelationSpec(name="part", pages=20_000.0),
        RelationSpec(name="supplier", pages=1_000.0),
        RelationSpec(name="region", pages=25.0),
    ]
    preds = [
        JoinPredicate("lineitem", "orders", selectivity=6.5e-8, label="l=o"),
        JoinPredicate("lineitem", "part", selectivity=5e-7, label="l=p"),
        JoinPredicate("part", "supplier", selectivity=1e-5, label="p=s",
                      equiv_class="suppkey"),
        JoinPredicate("supplier", "region", selectivity=4e-4, label="s=r",
                      equiv_class="suppkey"),
    ]
    memory = multiprogramming_memory(
        total_pages=6000.0,
        per_query_pages=450.0,
        max_concurrent=12,
        load=0.5,
        floor_pages=128.0,
    )
    return JoinQuery(rels, preds, rows_per_page=100), memory


def elastic_cloud_batch() -> Tuple[JoinQuery, MarkovParameter]:
    """A batch join on an autoscaling cloud node.

    The scaler adds memory while the batch runs (arrivals of capacity,
    not of competitors): memory *rises* between phases, so the phase-aware
    optimizer should defer memory-hungry joins — the mirror image of the
    multiprogramming drift scenario.
    """
    rels = [
        RelationSpec(name=f"S{i}", pages=p)
        for i, p in enumerate([220_000.0, 130_000.0, 60_000.0, 9_000.0])
    ]
    preds = [
        JoinPredicate(
            rels[i].name,
            rels[i + 1].name,
            selectivity=0.9 / (rels[i].pages * 100),
            label=f"s{i}={i+1}",
        )
        for i in range(3)
    ]
    states = [350.0, 800.0, 1800.0, 4000.0]
    n = len(states)
    grow = 0.55
    trans = np.zeros((n, n))
    for i in range(n):
        up = grow if i < n - 1 else 0.0
        trans[i, i] = 1.0 - up
        if i < n - 1:
            trans[i, i + 1] = up
    chain = MarkovParameter(states, [0.7, 0.3, 0.0, 0.0], trans)
    return JoinQuery(rels, preds, rows_per_page=100), chain
