"""SPJU query blocks: a union of SELECT-PROJECT-JOIN arms.

A :class:`UnionQuery` extends the optimizer's input language from SPJ to
SPJU: each *arm* is an ordinary :class:`~repro.plans.query.JoinQuery`
(its own relations, predicates and projection), and the block's result is
the (ALL or DISTINCT) union of the arms' results.

Arms are optimized independently — predicates never cross arms, so the
System-R dynamic program runs once per arm over that arm's relations —
and the chosen arm plans are combined under a single
:class:`~repro.plans.nodes.Union` root.  Arm result-size distributions
are propagated exactly as for SPJ blocks and additionally clamped to the
Chen & Schneider-style analytic bounds (see
:func:`repro.costmodel.estimates.subset_size_bounds`), which keeps the
C6-rebucketed per-arm distributions — and their convolution, the union's
size — inside provably attainable ranges.

:class:`UnionQuery` subclasses :class:`JoinQuery` over the *combined*
namespace (all arm relations and predicates), so every size/statistics
accessor (``rows_of``, ``predicates_within``, fingerprinting, contexts)
works unchanged; only plan enumeration treats it specially.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from .query import JoinQuery, QueryError

__all__ = ["UnionQuery"]


class UnionQuery(JoinQuery):
    """A union (ALL or DISTINCT) over independent SPJ arms.

    Parameters
    ----------
    arms:
        The SPJ blocks being unioned.  Relation names must be globally
        unique across arms (alias duplicated tables), all arms must share
        ``rows_per_page``, and arms may not carry a ``required_order`` —
        a union interleaves arms, so per-arm orders cannot survive.
    distinct:
        ``False`` (UNION ALL) streams the arms; ``True`` de-duplicates,
        which costs per-arm materialisation plus an external sort.
    """

    def __init__(self, arms: Sequence[JoinQuery], distinct: bool = False):
        arms = tuple(arms)
        if len(arms) < 2:
            raise QueryError("a union query needs at least two arms")
        for arm in arms:
            if isinstance(arm, UnionQuery):
                raise QueryError("union arms cannot themselves be unions")
            if not isinstance(arm, JoinQuery):
                raise QueryError(
                    f"union arms must be JoinQuery, got {type(arm).__name__}"
                )
            if arm.required_order is not None:
                raise QueryError(
                    "union arms cannot carry required_order; a union "
                    "interleaves its arms and guarantees no order"
                )
        rpp = arms[0].rows_per_page
        if any(a.rows_per_page != rpp for a in arms):
            raise QueryError("all union arms must share rows_per_page")
        relations = [r for a in arms for r in a.relations]
        predicates = [p for a in arms for p in a.predicates]
        # The parent validates global name uniqueness and predicate sanity.
        super().__init__(
            relations, predicates, required_order=None, rows_per_page=rpp
        )
        self.arms: Tuple[JoinQuery, ...] = arms
        self.distinct = bool(distinct)
        self._arm_index = {
            r.name: i for i, a in enumerate(arms) for r in a.relations
        }

    # ------------------------------------------------------------------

    def arm_of(self, rels) -> JoinQuery:
        """The arm owning every relation in ``rels``.

        Raises :class:`QueryError` when ``rels`` spans arms — no join or
        size estimate is defined across arm boundaries.
        """
        idx = {self._arm_index[n] for n in rels}
        if len(idx) != 1:
            raise QueryError(
                f"relations {sorted(rels)} span multiple union arms"
            )
        return self.arms[next(iter(idx))]

    def arm_index_of(self, rels) -> int:
        """Position of :meth:`arm_of`'s result within :attr:`arms`."""
        arm = self.arm_of(rels)
        return self.arms.index(arm)

    def projection_ratio_of(self, rels) -> float:
        """The owning arm's projection ratio (for sizing arm outputs)."""
        return self.arm_of(rels).projection_ratio

    def __repr__(self) -> str:
        kind = "DISTINCT" if self.distinct else "ALL"
        return f"UnionQuery({len(self.arms)} arms, {kind})"
