"""Plan trees: structural representation of physical query plans.

Nodes are immutable and hashable, and carry *structure only* — which
relations are scanned how, which joins use which method, where enforcer
sorts sit.  Sizes and costs are computed against a
:class:`~repro.plans.query.JoinQuery` by the cost model
(:mod:`repro.costmodel`), never stored in the tree, so the same plan
object can be costed under any parameter setting or distribution.

The helpers on :class:`Plan` expose exactly the views the algorithms need:
the ordered list of join *phases* (Section 3.5 charges each join to one
phase), the relation set, left-deepness checks, and a canonical signature
for deduplication across candidate sets.
"""

from __future__ import annotations

import typing
from dataclasses import dataclass
from typing import FrozenSet, Iterator, List, Optional, Tuple

from .properties import AccessPath, JoinMethod, order_from_join

__all__ = [
    "PlanShapeError",
    "Scan",
    "Join",
    "Sort",
    "Project",
    "Union",
    "UnionNode",
    "PlanNode",
    "JoinStep",
    "Plan",
    "left_deep_plan",
]


class PlanShapeError(ValueError):
    """A plan's tree shape does not support the requested view.

    Raised by shape-specific accessors (``Plan.join_order()``) on bushy or
    union plans, and by :meth:`repro.plans.space.PlanSpace.join` when a
    construction would leave the declared plan space.  Subclasses
    ``ValueError`` so call sites written against the old generic error
    keep working.
    """


@dataclass(frozen=True)
class Scan:
    """Leaf: read one base relation.

    ``filter_label`` names an optional local predicate applied during the
    scan (its selectivity lives in the query); ``access`` selects the
    access path used to evaluate it.
    """

    table: str
    access: AccessPath = AccessPath.FULL_SCAN
    filter_label: Optional[str] = None

    @property
    def children(self) -> Tuple["PlanNode", ...]:
        """Scans have no children."""
        return ()

    @property
    def order(self) -> Optional[str]:
        """Base-table scans produce no guaranteed order."""
        return None

    def relations(self) -> FrozenSet[str]:
        """The (singleton) set of base relations under this node."""
        return frozenset((self.table,))

    def signature(self) -> str:
        """Canonical string form."""
        suffix = f"[{self.filter_label}]" if self.filter_label else ""
        if self.access is AccessPath.FULL_SCAN:
            return f"{self.table}{suffix}"
        return f"{self.table}:{self.access.value}{suffix}"


@dataclass(frozen=True)
class Join:
    """Inner node: a binary join with a chosen physical method.

    ``order_label`` names the sort order produced when the method is
    sort-merge; it defaults to the predicate label and is set to the
    predicate's attribute equivalence class when one exists, so that
    orders can match across different predicates of the same class.
    """

    left: "PlanNode"
    right: "PlanNode"
    method: JoinMethod
    predicate_label: str
    order_label: Optional[str] = None

    @property
    def children(self) -> Tuple["PlanNode", ...]:
        """Left and right inputs."""
        return (self.left, self.right)

    @property
    def output_order_label(self) -> str:
        """The order label this join would produce if it were sort-merge."""
        return self.order_label if self.order_label is not None else self.predicate_label

    @property
    def order(self) -> Optional[str]:
        """Order label of the join's output (sort-merge only)."""
        return order_from_join(self.method, self.output_order_label)

    def relations(self) -> FrozenSet[str]:
        """All base relations joined under this node."""
        return self.left.relations() | self.right.relations()

    def signature(self) -> str:
        """Canonical string form."""
        return (
            f"({self.left.signature()} {self.method.value} "
            f"{self.right.signature()})"
        )


@dataclass(frozen=True)
class Sort:
    """Enforcer node: sort the child's output into ``sort_order``."""

    child: "PlanNode"
    sort_order: str

    @property
    def children(self) -> Tuple["PlanNode", ...]:
        """The single input."""
        return (self.child,)

    @property
    def order(self) -> Optional[str]:
        """A sort delivers exactly its requested order."""
        return self.sort_order

    def relations(self) -> FrozenSet[str]:
        """Base relations under this node."""
        return self.child.relations()

    def signature(self) -> str:
        """Canonical string form."""
        return f"sort[{self.sort_order}]({self.child.signature()})"


@dataclass(frozen=True)
class Project:
    """Projection: narrow the child's output to a subset of columns.

    Structure-only like every node: the *effect* of the projection (the
    page-count reduction) lives in the owning query block's
    ``projection_ratio``, never in the tree.  Projections stream — they
    cost nothing themselves and preserve the child's order — so the
    optimizer places them at block roots (the SPJ "P").
    """

    child: "PlanNode"
    label: Optional[str] = None

    @property
    def children(self) -> Tuple["PlanNode", ...]:
        """The single input."""
        return (self.child,)

    @property
    def order(self) -> Optional[str]:
        """Projection preserves the child's order."""
        return self.child.order

    def relations(self) -> FrozenSet[str]:
        """Base relations under this node."""
        return self.child.relations()

    def signature(self) -> str:
        """Canonical string form."""
        tag = f"[{self.label}]" if self.label else ""
        return f"project{tag}({self.child.signature()})"


@dataclass(frozen=True)
class Union:
    """N-ary union of SPJ arm subplans (the SPJU "U").

    ``distinct=False`` is UNION ALL: arms stream into the output and the
    node itself is free.  ``distinct=True`` must materialise and
    de-duplicate, which the cost model charges as per-arm writes plus one
    external sort over the combined output.
    """

    inputs: Tuple["PlanNode", ...]
    distinct: bool = False

    def __post_init__(self):
        object.__setattr__(self, "inputs", tuple(self.inputs))
        if len(self.inputs) < 2:
            raise PlanShapeError("a union node needs at least two inputs")

    @property
    def children(self) -> Tuple["PlanNode", ...]:
        """The arm subplans."""
        return self.inputs

    @property
    def order(self) -> Optional[str]:
        """A union interleaves arms: no output order is guaranteed."""
        return None

    def relations(self) -> FrozenSet[str]:
        """Base relations under all arms."""
        out: FrozenSet[str] = frozenset()
        for child in self.inputs:
            out = out | child.relations()
        return out

    def signature(self) -> str:
        """Canonical string form."""
        head = "union-distinct" if self.distinct else "union"
        return f"{head}({', '.join(c.signature() for c in self.inputs)})"


#: Alias for modules that already use ``typing.Union`` (e.g. tools/).
UnionNode = Union

PlanNode = typing.Union[Scan, Join, Sort, Project, Union]


@dataclass(frozen=True)
class JoinStep:
    """One join of a plan in execution (bottom-up) order.

    The shape-agnostic replacement for ``Plan.join_order()``: a left-deep
    plan's steps have singleton ``right_relations``, a bushy plan's may
    not, but every consumer can iterate steps without assuming either.
    """

    index: int
    join: Join
    left_relations: FrozenSet[str]
    right_relations: FrozenSet[str]

    @property
    def relations(self) -> FrozenSet[str]:
        """All base relations joined by this step."""
        return self.left_relations | self.right_relations


class Plan:
    """A rooted plan tree plus the derived views the optimizer uses."""

    __slots__ = ("root", "_joins", "_sig")

    def __init__(self, root: PlanNode):
        self.root = root
        self._joins: Optional[List[Join]] = None
        self._sig: Optional[str] = None

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------

    def nodes(self) -> Iterator[PlanNode]:
        """Post-order traversal (children before parents)."""
        yield from _postorder(self.root)

    def joins(self) -> List[Join]:
        """Joins in execution order (bottom-up post-order, any shape).

        For a left-deep plan this is exactly the phase sequence of
        Section 3.5: ``joins()[k]`` runs during phase ``k``.
        """
        if self._joins is None:
            self._joins = [n for n in self.nodes() if isinstance(n, Join)]
        return self._joins

    def join_steps(self) -> List[JoinStep]:
        """Shape-agnostic join traversal: one :class:`JoinStep` per join.

        This is the general replacement for :meth:`join_order` — it works
        for left-deep, zig-zag, bushy and union plans alike, exposing each
        join's input relation sets instead of assuming a single spine.
        """
        return [
            JoinStep(
                index=i,
                join=j,
                left_relations=j.left.relations(),
                right_relations=j.right.relations(),
            )
            for i, j in enumerate(self.joins())
        ]

    def scans(self) -> List[Scan]:
        """Leaf scans in post-order."""
        return [n for n in self.nodes() if isinstance(n, Scan)]

    def sorts(self) -> List[Sort]:
        """Enforcer sorts in post-order."""
        return [n for n in self.nodes() if isinstance(n, Sort)]

    @property
    def n_joins(self) -> int:
        """Number of join phases."""
        return len(self.joins())

    @property
    def n_phases(self) -> int:
        """Number of execution phases (one per join; a lone scan is one)."""
        return max(1, self.n_joins)

    def relations(self) -> FrozenSet[str]:
        """All base relations referenced by the plan."""
        return self.root.relations()

    @property
    def order(self) -> Optional[str]:
        """Output order label of the whole plan."""
        return self.root.order

    # ------------------------------------------------------------------
    # Shape predicates
    # ------------------------------------------------------------------

    def is_left_deep(self) -> bool:
        """True when every join's right input is a leaf (modulo sorts)."""
        for join in self.joins():
            right = _strip_sorts(join.right)
            if not isinstance(right, Scan):
                return False
        return True

    def join_order(self) -> List[str]:
        """For a left-deep plan: relation names in join order.

        The first element is the leftmost (bottom) relation.  Raises
        :class:`PlanShapeError` on bushy or union plans — use
        :meth:`join_steps` for a shape-agnostic traversal.
        """
        if any(isinstance(n, Union) for n in self.nodes()):
            raise PlanShapeError(
                "join_order() is not defined for union plans; "
                "use join_steps() instead"
            )
        if not self.is_left_deep():
            raise PlanShapeError(
                "join_order() is only defined for left-deep plans; "
                "use join_steps() instead"
            )
        joins = self.joins()
        if not joins:
            only = self.scans()
            return [only[0].table] if only else []
        order: List[str] = []
        bottom_left = _strip_sorts(joins[0].left)
        if isinstance(bottom_left, Scan):
            order.append(bottom_left.table)
        for join in joins:
            right = _strip_sorts(join.right)
            assert isinstance(right, Scan)
            order.append(right.table)
        return order

    def phase_of(self, node: PlanNode) -> int:
        """Execution phase a node's work is charged to.

        Joins get their own phase; scans and sorts are charged to the
        phase of the nearest enclosing join (the root sort rides with the
        final join's phase), matching the paper's join-per-phase model.
        """
        joins = self.joins()
        if isinstance(node, Join):
            return joins.index(node)
        # Attribute to the first join at-or-above the node, else phase 0.
        for i, join in enumerate(joins):
            if node in set(_postorder(join)):
                return i
        return max(0, len(joins) - 1)

    # ------------------------------------------------------------------
    # Identity / presentation
    # ------------------------------------------------------------------

    def signature(self) -> str:
        """Canonical string identity (equal iff same structure)."""
        if self._sig is None:
            self._sig = self.root.signature()
        return self._sig

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Plan):
            return NotImplemented
        return self.signature() == other.signature()

    def __hash__(self) -> int:
        return hash(self.signature())

    def __repr__(self) -> str:
        return f"Plan({self.signature()})"

    def pretty(self) -> str:
        """Multi-line indented rendering for humans."""
        lines: List[str] = []
        _pretty(self.root, 0, lines)
        return "\n".join(lines)


def _postorder(node: PlanNode) -> Iterator[PlanNode]:
    for child in node.children:
        yield from _postorder(child)
    yield node


def _strip_sorts(node: PlanNode) -> PlanNode:
    """Strip streaming/enforcer wrappers (sorts *and* projections)."""
    while isinstance(node, (Sort, Project)):
        node = node.child
    return node


def _pretty(node: PlanNode, depth: int, out: List[str]) -> None:
    pad = "  " * depth
    if isinstance(node, Scan):
        out.append(f"{pad}Scan({node.signature()})")
        return
    if isinstance(node, Sort):
        out.append(f"{pad}Sort[{node.sort_order}]")
        _pretty(node.child, depth + 1, out)
        return
    if isinstance(node, Project):
        tag = f"[{node.label}]" if node.label else ""
        out.append(f"{pad}Project{tag}")
        _pretty(node.child, depth + 1, out)
        return
    if isinstance(node, Union):
        out.append(f"{pad}Union[{'distinct' if node.distinct else 'all'}]")
        for child in node.inputs:
            _pretty(child, depth + 1, out)
        return
    out.append(f"{pad}Join[{node.method.value} on {node.predicate_label}]")
    _pretty(node.left, depth + 1, out)
    _pretty(node.right, depth + 1, out)


def left_deep_plan(
    tables: List[str],
    methods: List[JoinMethod],
    predicate_labels: List[str],
    final_sort: Optional[str] = None,
) -> Plan:
    """Convenience constructor for a left-deep plan.

    ``tables[0]`` is the bottom-left relation; ``methods[i]`` and
    ``predicate_labels[i]`` describe the join that adds ``tables[i+1]``.
    """
    if len(tables) < 1:
        raise ValueError("need at least one table")
    if len(methods) != len(tables) - 1 or len(predicate_labels) != len(tables) - 1:
        raise ValueError("need exactly one method and label per join")
    node: PlanNode = Scan(tables[0])
    for table, method, label in zip(tables[1:], methods, predicate_labels):
        node = Join(left=node, right=Scan(table), method=method, predicate_label=label)
    if final_sort is not None and node.order != final_sort:
        node = Sort(child=node, sort_order=final_sort)
    return Plan(node)
