"""Plan spaces: a first-class description of the shapes a plan may take.

The paper restricts its algorithms to left-deep select-join plans
(heuristic 2 of Section 2.2) and defers bushy trees; this module makes
that restriction — and its relaxations — an explicit, shared object
instead of a string flag buried in one optimizer.  A :class:`PlanSpace`
bundles:

* the **tree shape** (``left-deep``, ``zig-zag``, ``bushy``) — which
  (left, right) partitions the System-R dynamic program may consider for
  each relation subset;
* whether **union plans** are admitted (the SPJU extension: union arms
  over SPJ sub-blocks, sized via Chen & Schneider-style bounds);
* derived **capabilities**: ``ordered_phases`` is True exactly when every
  candidate plan for a subset of size ``s`` schedules its joins in the
  canonical phases ``0..s-2`` — the property the Markov objective
  (Theorem 3.4) needs.  Left-deep *and* zig-zag trees have it (each join
  adds one relation); bushy trees do not.

Every component that enumerates or validates plans — SystemRDP, the
exhaustive and randomized optimizers, Algorithms A-D via the facade, the
serving tier's plan-cache keys — consumes the same :class:`PlanSpace`, so
"which plans exist" is decided in exactly one place.  Constructing
:class:`~repro.plans.nodes.Join` nodes through :meth:`PlanSpace.join` is
the sanctioned path outside ``plans/`` (enforced by analysis rule
PLAN001).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Sequence, Tuple

from .nodes import Join, Plan, PlanNode, PlanShapeError, Scan, _strip_sorts
from .nodes import Union as UnionNode
from .properties import JoinMethod

__all__ = [
    "PlanSpace",
    "LEFT_DEEP",
    "ZIG_ZAG",
    "BUSHY",
    "SPJU",
]

_SHAPES = ("left-deep", "zig-zag", "bushy")

#: Accepted spellings (lowercased) for each shape.
_SHAPE_ALIASES = {
    "left-deep": "left-deep",
    "left_deep": "left-deep",
    "leftdeep": "left-deep",
    "zig-zag": "zig-zag",
    "zig_zag": "zig-zag",
    "zigzag": "zig-zag",
    "bushy": "bushy",
}


@dataclass(frozen=True)
class PlanSpace:
    """An immutable description of the admissible plan shapes.

    ``shape`` is one of ``"left-deep"``, ``"zig-zag"``, ``"bushy"``;
    ``union`` admits SPJU plans (union arms over SPJ blocks).  Use the
    module constants (:data:`LEFT_DEEP`, :data:`ZIG_ZAG`, :data:`BUSHY`,
    :data:`SPJU`) or :meth:`parse` rather than constructing directly.
    """

    shape: str
    union: bool = False

    def __post_init__(self):
        if self.shape not in _SHAPES:
            raise ValueError(
                f"unknown plan-space shape {self.shape!r}; "
                f"expected one of {_SHAPES}"
            )

    # ------------------------------------------------------------------
    # Identity / parsing
    # ------------------------------------------------------------------

    @property
    def key(self) -> str:
        """Canonical spelling, stable across parse round-trips.

        Used verbatim in facade arguments, serving plan-cache knob
        tuples, and experiment tables.
        """
        if self.union:
            return "spju" if self.shape == "bushy" else f"{self.shape}+union"
        return self.shape

    @classmethod
    def parse(cls, value) -> "PlanSpace":
        """Resolve a user-facing spelling into a :class:`PlanSpace`.

        Accepts an existing :class:`PlanSpace` (returned as-is), the
        canonical keys, underscore/no-dash alias spellings, ``"spju"``
        (bushy + union), and ``"<shape>+union"``.  Raises ``ValueError``
        on anything else; optimizer entry points wrap that into
        :class:`~repro.optimizer.errors.OptimizerConfigError`.
        """
        if isinstance(value, cls):
            return value
        if not isinstance(value, str):
            raise ValueError(f"cannot parse plan space from {value!r}")
        text = value.strip().lower()
        if text == "spju":
            return SPJU
        union = False
        if text.endswith("+union"):
            union = True
            text = text[: -len("+union")]
        shape = _SHAPE_ALIASES.get(text)
        if shape is None:
            raise ValueError(
                f"unknown plan space {value!r}; expected one of "
                "'left-deep', 'zig-zag', 'bushy', 'spju' "
                "(or '<shape>+union')"
            )
        return cls(shape=shape, union=union)

    # ------------------------------------------------------------------
    # Capabilities
    # ------------------------------------------------------------------

    @property
    def ordered_phases(self) -> bool:
        """True when joins land in canonical phases ``0..s-2`` per subset.

        This is what phase-indexed objectives (the Markov coster) require.
        Left-deep and zig-zag trees qualify — each join adds exactly one
        relation — while bushy trees interleave subtree phases.
        """
        return self.shape != "bushy"

    @property
    def supports_union(self) -> bool:
        """Whether SPJU (union) plans are admitted."""
        return self.union

    # ------------------------------------------------------------------
    # Enumeration primitives (the DP consumes exactly these two)
    # ------------------------------------------------------------------

    def level_candidates(
        self,
        query,
        size: int,
        allow_cross_products: bool = False,
        names: Optional[Sequence[str]] = None,
    ) -> List[FrozenSet[str]]:
        """The explicit candidate-subset list for one DP level.

        Level ``size`` of the System-R dag holds every connected subset
        of that many relations (all subsets when cross products are
        allowed).  Returning the level as a materialised list — rather
        than interleaving generation with evaluation — is deliberate: a
        sharded serving tier can split one level across workers because
        its entries only depend on earlier levels.
        """
        if names is None:
            names = query.relation_names()
        out: List[FrozenSet[str]] = []
        for combo in itertools.combinations(names, size):
            subset = frozenset(combo)
            if not allow_cross_products and not query.is_connected(subset):
                continue
            out.append(subset)
        return out

    def partitions(
        self, subset: FrozenSet[str]
    ) -> List[Tuple[FrozenSet[str], FrozenSet[str]]]:
        """Ordered (left, right) splits of ``subset`` for this shape.

        The enumeration is ordered because join cost is asymmetric in
        outer/inner.  Left-deep yields ``(S∖{m}, {m})``; zig-zag adds the
        mirrored ``({m}, S∖{m})`` splits (composite on the right);
        bushy yields every ordered pair of complementary non-empty
        subsets.
        """
        members = sorted(subset)
        n = len(members)
        if self.shape == "left-deep":
            return [(subset - {m}, frozenset((m,))) for m in members]
        if self.shape == "zig-zag":
            out = [(subset - {m}, frozenset((m,))) for m in members]
            if n > 2:  # for n == 2 the mirrors are already present
                out += [(frozenset((m,)), subset - {m}) for m in members]
            return out
        out: List[Tuple[FrozenSet[str], FrozenSet[str]]] = []
        for mask in range(1, (1 << n) - 1):
            left = frozenset(members[i] for i in range(n) if mask & (1 << i))
            out.append((left, subset - left))
        return out

    # ------------------------------------------------------------------
    # Construction / validation
    # ------------------------------------------------------------------

    def join(
        self,
        left: PlanNode,
        right: PlanNode,
        method: JoinMethod,
        predicate_label: str,
        order_label: Optional[str] = None,
    ) -> Join:
        """Build a join node, verifying it stays inside this space.

        This is the sanctioned :class:`~repro.plans.nodes.Join`
        construction path for code outside ``plans/`` (rule PLAN001);
        it raises :class:`~repro.plans.nodes.PlanShapeError` when the
        shape admission fails.
        """
        node = Join(
            left=left,
            right=right,
            method=method,
            predicate_label=predicate_label,
            order_label=order_label,
        )
        if not self._admits_join(node):
            raise PlanShapeError(
                f"join {node.signature()} is outside the "
                f"{self.key!r} plan space"
            )
        return node

    def _admits_join(self, join: Join) -> bool:
        if self.shape == "bushy":
            return True
        right_leaf = isinstance(_strip_sorts(join.right), Scan)
        if self.shape == "left-deep":
            return right_leaf
        return right_leaf or isinstance(_strip_sorts(join.left), Scan)

    def admits(self, plan: Plan) -> bool:
        """True when every node of ``plan`` is legal in this space."""
        for node in plan.nodes():
            if isinstance(node, UnionNode) and not self.union:
                return False
            if isinstance(node, Join) and not self._admits_join(node):
                return False
        return True


#: The paper's search space (heuristic 2): composites only on the left.
LEFT_DEEP = PlanSpace("left-deep")
#: Left-deep plus mirrored splits: one input of every join is a leaf.
ZIG_ZAG = PlanSpace("zig-zag")
#: All binary trees — the extension the paper defers.
BUSHY = PlanSpace("bushy")
#: Bushy trees plus union plans over SPJ arms.
SPJU = PlanSpace("bushy", union=True)
