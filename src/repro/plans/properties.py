"""Physical-plan properties: join methods, access paths, sort orders.

Sort orders are plain string labels.  A sort-merge join over the predicate
labelled ``"A.x=B.x"`` produces output ordered by that label; a query's
``required_order`` is satisfied when the root plan's order label matches.
This is the minimal "interesting orders" machinery System R needs: the
classic Example-1.1 trade-off (sort-merge delivers the order for free,
Grace hash needs an explicit sort) falls out of it.
"""

from __future__ import annotations

import enum

__all__ = ["JoinMethod", "AccessPath", "PIPELINE_BREAKERS"]


class JoinMethod(enum.Enum):
    """Binary join algorithms the optimizer may pick.

    The first three carry the paper's simplified Shapiro-style cost
    formulas; ``BLOCK_NESTED_LOOP`` and ``HYBRID_HASH`` are the standard
    refinements, included as optional methods for the extension
    experiments.
    """

    NESTED_LOOP = "NL"
    SORT_MERGE = "SM"
    GRACE_HASH = "GH"
    BLOCK_NESTED_LOOP = "BNL"
    HYBRID_HASH = "HH"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class AccessPath(enum.Enum):
    """How a base relation is read."""

    FULL_SCAN = "scan"
    INDEX_SCAN = "index"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Join methods whose output is materialised before the parent reads it
#: (all of them, under this library's phase-per-join execution model).
PIPELINE_BREAKERS = frozenset(JoinMethod)


def order_from_join(method: JoinMethod, predicate_label: str) -> str | None:
    """Sort order produced by a join, if any.

    Sort-merge joins emit rows ordered by the join key; the other methods
    produce no useful order (nested loop preserves outer order only at the
    page level, which is not a tuple order guarantee we model).
    """
    if method is JoinMethod.SORT_MERGE:
        return predicate_label
    return None
