"""Logical join queries: the optimizer's input.

A :class:`JoinQuery` is a SELECT-PROJECT-JOIN block: a set of relations
with sizes, a set of (equi)join predicates with selectivities, and an
optional required output order.  Every quantity that the LEC framework
treats as uncertain can be supplied either as a point estimate (the LSC
view) or as a :class:`~repro.core.distributions.DiscreteDistribution`
(the LEC view); accessors expose both, defaulting the distribution to a
point mass when only the point is known.

``from_catalog`` builds a query from the schema/statistics substrate, so
end-to-end examples can start from tables and histograms rather than
hand-written numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Set, Tuple

from ..catalog.schema import Catalog
from ..catalog.statistics import StatisticsCatalog
from ..core.distributions import DiscreteDistribution, point_mass

__all__ = ["IndexInfo", "RelationSpec", "JoinPredicate", "JoinQuery", "QueryError"]


class QueryError(ValueError):
    """Raised for malformed queries (unknown relations, disconnected graphs)."""


@dataclass(frozen=True)
class IndexInfo:
    """An index usable to evaluate a relation's local filter predicate.

    ``height`` is the number of levels probed (one page I/O each);
    ``clustered`` controls whether matching rows are contiguous in the
    base table.
    """

    height: int = 2
    clustered: bool = False

    def __post_init__(self) -> None:
        if self.height < 1:
            raise QueryError("index height must be >= 1")


@dataclass(frozen=True)
class RelationSpec:
    """One input relation.

    ``pages`` is the point size estimate used by LSC; ``pages_dist``
    (optional) is the distributional size used by Algorithm D.  ``rows``
    defaults to ``pages * rows_per_page`` of the owning query.
    ``filter_selectivity`` is a local predicate applied during the scan;
    when ``index`` is given, the optimizer additionally considers an
    index-scan access path for evaluating that filter (the System-R
    "best plan to access each of the individual relations" step).
    """

    name: str
    pages: float
    rows: Optional[float] = None
    pages_dist: Optional[DiscreteDistribution] = None
    filter_selectivity: float = 1.0
    index: Optional[IndexInfo] = None

    def __post_init__(self) -> None:
        if self.pages < 0:
            raise QueryError(f"relation {self.name!r} has negative page count")
        if not 0.0 <= self.filter_selectivity <= 1.0:
            raise QueryError("filter_selectivity must be in [0, 1]")

    def has_index_path(self) -> bool:
        """True when an index-scan access path should be considered."""
        return self.index is not None and self.filter_selectivity < 1.0

    def pages_distribution(self) -> DiscreteDistribution:
        """Size in pages as a distribution (point mass if not uncertain)."""
        if self.pages_dist is not None:
            return self.pages_dist
        return point_mass(float(self.pages))


@dataclass(frozen=True)
class JoinPredicate:
    """An equijoin predicate between two relations.

    ``selectivity`` is the point estimate; ``selectivity_dist`` the
    distributional one.  ``label`` identifies the predicate for interesting
    orders (a sort-merge join over this predicate yields order ``label``).
    ``equiv_class`` optionally names the *attribute equivalence class* the
    predicate equates (e.g. several chain predicates all on column ``x``):
    predicates in the same class produce interchangeable sort orders, so a
    sort-merge join's output can arrive presorted at a later sort-merge
    join of the same class — the full interesting-orders effect.
    ``result_pages_override`` pins the output size of a join that applies
    exactly this predicate, which scenario reconstructions (Example 1.1's
    "the result has 3000 pages") use instead of selectivity arithmetic.
    """

    left: str
    right: str
    selectivity: float
    label: Optional[str] = None
    selectivity_dist: Optional[DiscreteDistribution] = None
    result_pages_override: Optional[float] = None
    equiv_class: Optional[str] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.selectivity <= 1.0:
            raise QueryError(
                f"selectivity of {self.left}-{self.right} must be in [0, 1]"
            )
        if self.label is None:
            canon = "=".join(sorted((self.left, self.right)))
            object.__setattr__(self, "label", canon)

    @property
    def order_label(self) -> str:
        """Sort-order label an SM join over this predicate produces."""
        return self.equiv_class if self.equiv_class is not None else self.label  # type: ignore[return-value]

    def connects(self, a: str, b: str) -> bool:
        """True when this predicate links relations ``a`` and ``b``."""
        return {self.left, self.right} == {a, b}

    def touches(self, rels: FrozenSet[str]) -> bool:
        """True when both endpoints lie inside ``rels``."""
        return self.left in rels and self.right in rels

    def selectivity_distribution(self) -> DiscreteDistribution:
        """Selectivity as a distribution (point mass if not uncertain)."""
        if self.selectivity_dist is not None:
            return self.selectivity_dist
        return point_mass(self.selectivity)


class JoinQuery:
    """A join query over named relations.

    Parameters
    ----------
    relations:
        The input relations.
    predicates:
        Join predicates.  Relations not linked by any predicate can only
        be combined via cross products (disabled by default in the
        optimizer).
    required_order:
        Optional order label the final result must satisfy (a predicate
        label); when the chosen plan does not produce it, an enforcer
        sort is appended.
    rows_per_page:
        Conversion factor between rows and pages for intermediates.
    projection_ratio:
        Fraction of the output *page width* the block's projection list
        keeps (the SPJ "P"; 1.0 means SELECT *).  The optimizer surfaces
        it as a streaming :class:`~repro.plans.nodes.Project` at the
        block root; it only affects cost when the projected result is
        re-materialised (e.g. by a distinct union's deduplication).
    """

    def __init__(
        self,
        relations: Sequence[RelationSpec],
        predicates: Sequence[JoinPredicate] = (),
        required_order: Optional[str] = None,
        rows_per_page: int = 100,
        projection_ratio: float = 1.0,
    ):
        if not relations:
            raise QueryError("a query needs at least one relation")
        names = [r.name for r in relations]
        if len(set(names)) != len(names):
            raise QueryError("duplicate relation names in query")
        self.relations: Tuple[RelationSpec, ...] = tuple(relations)
        self.predicates: Tuple[JoinPredicate, ...] = tuple(predicates)
        self.required_order = required_order
        if rows_per_page <= 0:
            raise QueryError("rows_per_page must be positive")
        self.rows_per_page = rows_per_page
        if not 0.0 < projection_ratio <= 1.0:
            raise QueryError("projection_ratio must be in (0, 1]")
        self.projection_ratio = float(projection_ratio)
        self._by_name: Dict[str, RelationSpec] = {r.name: r for r in self.relations}
        known = set(names)
        for p in self.predicates:
            if p.left not in known or p.right not in known:
                raise QueryError(
                    f"predicate {p.label!r} references unknown relation"
                )
            if p.left == p.right:
                raise QueryError(f"predicate {p.label!r} is a self-join loop")
        if required_order is not None:
            labels = {p.label for p in self.predicates} | {
                p.order_label for p in self.predicates
            }
            if required_order not in labels:
                raise QueryError(
                    f"required_order {required_order!r} is not a predicate "
                    "label or order equivalence class"
                )

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------

    @property
    def n_relations(self) -> int:
        """Number of input relations."""
        return len(self.relations)

    def relation(self, name: str) -> RelationSpec:
        """Relation spec by name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise QueryError(f"no relation {name!r} in query") from None

    def relation_names(self) -> List[str]:
        """Relation names in declaration order."""
        return [r.name for r in self.relations]

    def rows_of(self, name: str) -> float:
        """Point row-count estimate of a relation (after local filter)."""
        spec = self.relation(name)
        base = spec.rows if spec.rows is not None else spec.pages * self.rows_per_page
        return base * spec.filter_selectivity

    def pages_of(self, name: str) -> float:
        """Point page-count estimate of a relation (after local filter)."""
        spec = self.relation(name)
        return max(1.0, spec.pages * spec.filter_selectivity) if spec.pages else 0.0

    def predicates_within(self, rels: FrozenSet[str]) -> List[JoinPredicate]:
        """All predicates whose endpoints both lie in ``rels``."""
        return [p for p in self.predicates if p.touches(rels)]

    def predicates_between(
        self, group: FrozenSet[str], newcomer: str
    ) -> List[JoinPredicate]:
        """Predicates linking ``newcomer`` to any relation in ``group``."""
        return [
            p
            for p in self.predicates
            if (p.left == newcomer and p.right in group)
            or (p.right == newcomer and p.left in group)
        ]

    def is_connected(self, rels: Optional[FrozenSet[str]] = None) -> bool:
        """True when the join graph restricted to ``rels`` is connected."""
        if rels is None:
            rels = frozenset(self._by_name)
        rels = frozenset(rels)
        if len(rels) <= 1:
            return True
        adj: Dict[str, Set[str]] = {r: set() for r in rels}
        for p in self.predicates:
            if p.left in rels and p.right in rels:
                adj[p.left].add(p.right)
                adj[p.right].add(p.left)
        seen = {next(iter(rels))}
        frontier = list(seen)
        while frontier:
            cur = frontier.pop()
            for nxt in adj[cur]:
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return seen == rels

    def has_uncertain_sizes(self) -> bool:
        """True when any relation size or selectivity is distributional."""
        if any(r.pages_dist is not None for r in self.relations):
            return True
        return any(p.selectivity_dist is not None for p in self.predicates)

    # ------------------------------------------------------------------
    # Construction from the catalog substrate
    # ------------------------------------------------------------------

    @classmethod
    def from_catalog(
        cls,
        stats: StatisticsCatalog,
        tables: Sequence[str],
        join_columns: Mapping[Tuple[str, str], Tuple[str, str]],
        required_order: Optional[str] = None,
        rows_per_page: Optional[int] = None,
    ) -> "JoinQuery":
        """Build a query from catalog statistics.

        ``join_columns`` maps a pair of table names to the pair of column
        names they equijoin on; selectivities come from the classical
        ``1/max(V)`` rule using the catalog's distinct counts.
        """
        relations = []
        rpp = rows_per_page
        for t in tables:
            ts = stats.table_stats(t)
            relations.append(
                RelationSpec(
                    name=t,
                    pages=float(ts.n_pages),
                    rows=float(ts.n_rows),
                    pages_dist=ts.size_distribution,
                )
            )
            if rpp is None and ts.n_pages:
                rpp = max(1, round(ts.n_rows / ts.n_pages))
        predicates = []
        for (ta, tb), (ca, cb) in join_columns.items():
            sel = stats.join_selectivity(ta, tb, ca, cb)
            predicates.append(
                JoinPredicate(
                    left=ta,
                    right=tb,
                    selectivity=sel,
                    label=f"{ta}.{ca}={tb}.{cb}",
                )
            )
        return cls(
            relations,
            predicates,
            required_order=required_order,
            rows_per_page=rpp or 100,
        )

    def __repr__(self) -> str:
        rels = ", ".join(f"{r.name}({r.pages:g}p)" for r in self.relations)
        return f"JoinQuery([{rels}], {len(self.predicates)} predicates)"
