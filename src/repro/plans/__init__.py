"""Plan algebra: physical plan trees, spaces, properties and queries."""

from .nodes import (
    Join,
    JoinStep,
    Plan,
    PlanNode,
    PlanShapeError,
    Project,
    Scan,
    Sort,
    UnionNode,
    left_deep_plan,
)
from .properties import AccessPath, JoinMethod
from .query import JoinPredicate, JoinQuery, QueryError, RelationSpec
from .space import BUSHY, LEFT_DEEP, SPJU, ZIG_ZAG, PlanSpace
from .spju import UnionQuery

__all__ = [
    "Plan",
    "PlanNode",
    "PlanShapeError",
    "Scan",
    "Join",
    "Sort",
    "Project",
    "UnionNode",
    "JoinStep",
    "left_deep_plan",
    "JoinMethod",
    "AccessPath",
    "JoinQuery",
    "JoinPredicate",
    "RelationSpec",
    "QueryError",
    "UnionQuery",
    "PlanSpace",
    "LEFT_DEEP",
    "ZIG_ZAG",
    "BUSHY",
    "SPJU",
]
