"""Plan algebra: physical plan trees, properties and logical queries."""

from .nodes import Join, Plan, PlanNode, Scan, Sort, left_deep_plan
from .properties import AccessPath, JoinMethod
from .query import JoinPredicate, JoinQuery, QueryError, RelationSpec

__all__ = [
    "Plan",
    "PlanNode",
    "Scan",
    "Join",
    "Sort",
    "left_deep_plan",
    "JoinMethod",
    "AccessPath",
    "JoinQuery",
    "JoinPredicate",
    "RelationSpec",
    "QueryError",
]
