"""Finite discrete probability distributions ("bucketed" parameters).

The LEC framework models every uncertain optimizer parameter — available
buffer memory, relation sizes, predicate selectivities — as a probability
distribution partitioned into a small number of *buckets*.  Each bucket is
represented by a single support point (its representative) carrying the
bucket's total probability mass.  This module provides the
:class:`DiscreteDistribution` type used throughout the library, together
with the prefix-sum machinery (conditional expectations, tail
probabilities) that the linear-time expected-cost algorithms of the paper
(Sections 3.6.1-3.6.2) rely on.

Design notes
------------
* Instances are immutable: all mutating-style operations return new
  distributions.  Internally, support points are kept sorted ascending and
  duplicate values are merged, so two distributions over the same PMF
  compare equal regardless of construction order.
* Probabilities are validated to be non-negative and to sum to one within
  a small tolerance; they are renormalised exactly on construction so that
  downstream expectations are not polluted by drift.
* All heavy lifting uses numpy, but the public API accepts and returns
  plain Python floats where scalars are concerned.
"""

from __future__ import annotations

import math
from typing import Callable, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "DiscreteDistribution",
    "point_mass",
    "two_point",
    "uniform_over",
    "from_samples",
    "discretized_lognormal",
    "discretized_normal",
    "independent_product",
]

_PROB_TOL = 1e-9


class DistributionError(ValueError):
    """Raised when a distribution would be constructed from invalid data."""


def _as_float_array(data) -> np.ndarray:
    """1-d float view of ``data`` without an intermediate ``list`` copy.

    Arrays and sequences go straight through ``np.asarray`` (ndarrays of
    the right dtype are passed through as-is — safe because the
    constructor's sorting/normalisation always produces fresh arrays
    before freezing them); only lazy iterables are materialised first.
    """
    if isinstance(data, (np.ndarray, list, tuple)):
        return np.asarray(data, dtype=float)
    return np.asarray(list(data), dtype=float)


class DiscreteDistribution:
    """An immutable finite discrete probability distribution.

    Parameters
    ----------
    values:
        Support points (bucket representatives).  Need not be sorted or
        unique; duplicates are merged by summing their probabilities.
    probs:
        Probability mass for each support point.  Must be non-negative and
        sum to 1 within ``1e-9`` (the mass is renormalised exactly).

    Examples
    --------
    >>> memory = DiscreteDistribution([2000, 700], [0.8, 0.2])
    >>> memory.expectation()
    1740.0
    >>> memory.mode()
    2000.0
    """

    __slots__ = ("_values", "_probs", "_cdf", "_weighted_prefix", "_tail", "_hash")

    def __init__(self, values: Iterable[float], probs: Iterable[float]):
        vals = _as_float_array(values)
        prbs = _as_float_array(probs)
        if vals.shape != prbs.shape or vals.ndim != 1:
            raise DistributionError(
                f"values and probs must be 1-d and the same length, got shapes "
                f"{vals.shape} and {prbs.shape}"
            )
        if vals.size == 0:
            raise DistributionError("a distribution needs at least one support point")
        if np.any(~np.isfinite(vals)):
            raise DistributionError("support points must be finite")
        if np.any(prbs < -_PROB_TOL):
            raise DistributionError("probabilities must be non-negative")
        prbs = np.clip(prbs, 0.0, None)
        total = float(prbs.sum())
        if not math.isclose(total, 1.0, rel_tol=0.0, abs_tol=1e-6):
            raise DistributionError(f"probabilities must sum to 1, got {total!r}")
        prbs = prbs / total

        order = np.argsort(vals, kind="stable")
        vals = vals[order]
        prbs = prbs[order]

        # Merge duplicate support points so equality is canonical.
        keep_mask = np.empty(vals.size, dtype=bool)
        keep_mask[0] = True
        keep_mask[1:] = vals[1:] != vals[:-1]
        if not keep_mask.all():
            group_ids = np.cumsum(keep_mask) - 1
            merged = np.zeros(int(group_ids[-1]) + 1, dtype=float)
            np.add.at(merged, group_ids, prbs)
            vals = vals[keep_mask]
            prbs = merged

        # Drop zero-probability points unless that would empty the support.
        nonzero = prbs > 0.0
        if nonzero.any() and not nonzero.all():
            vals = vals[nonzero]
            prbs = prbs[nonzero]

        self._values = vals
        self._probs = prbs
        self._values.setflags(write=False)
        self._probs.setflags(write=False)
        self._cdf = np.cumsum(prbs)
        self._weighted_prefix = np.cumsum(vals * prbs)
        self._cdf.setflags(write=False)
        self._weighted_prefix.setflags(write=False)
        self._tail: Optional[np.ndarray] = None
        self._hash: Optional[int] = None

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def values(self) -> np.ndarray:
        """Sorted support points (read-only array)."""
        return self._values

    @property
    def probs(self) -> np.ndarray:
        """Probability mass aligned with :attr:`values` (read-only array)."""
        return self._probs

    @property
    def n_buckets(self) -> int:
        """Number of support points (buckets)."""
        return int(self._values.size)

    def support(self) -> List[float]:
        """The support as a plain list of floats."""
        return [float(v) for v in self._values]

    def items(self) -> Iterator[Tuple[float, float]]:
        """Iterate over ``(value, probability)`` pairs in ascending value order."""
        for v, p in zip(self._values, self._probs):
            yield float(v), float(p)

    def prob_of(self, value: float) -> float:
        """Probability mass at ``value`` (0.0 if not a support point)."""
        idx = np.searchsorted(self._values, value)
        if idx < self._values.size and self._values[idx] == value:
            return float(self._probs[idx])
        return 0.0

    @property
    def cdf_array(self) -> np.ndarray:
        """``Pr(X <= values[i])`` per support point (read-only array).

        The prefix table the linear-time expected-cost algorithms gather
        from; cached at construction so no caller ever re-cumsums it.
        """
        return self._cdf

    @property
    def weighted_prefix_array(self) -> np.ndarray:
        """``E[X ; X <= values[i]]`` per support point (read-only array)."""
        return self._weighted_prefix

    def sf_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(Pr(X >= values[i]), Pr(X > values[i]))`` suffix tables.

        Computed once per instance and cached (the survival table the
        paper amortises across all dag nodes); both arrays are read-only
        views into one suffix-sum buffer.
        """
        if self._tail is None:
            suffix = np.concatenate([np.cumsum(self._probs[::-1])[::-1], [0.0]])
            suffix.setflags(write=False)
            self._tail = suffix
        return self._tail[:-1], self._tail[1:]

    def cdf_many(self, xs) -> np.ndarray:
        """Vectorized :meth:`cdf`: ``Pr(X <= x)`` for an array of ``x``."""
        xs = np.asarray(xs, dtype=float)
        idx = np.searchsorted(self._values, xs, side="right")
        return np.where(idx > 0, self._cdf[np.maximum(idx - 1, 0)], 0.0)

    def sf_many(self, xs) -> np.ndarray:
        """Vectorized :meth:`sf`: ``Pr(X > x)`` for an array of ``x``."""
        return 1.0 - self.cdf_many(xs)

    def prob_of_many(self, xs) -> np.ndarray:
        """Vectorized :meth:`prob_of`: point mass at each of ``xs``."""
        xs = np.asarray(xs, dtype=float)
        idx = np.searchsorted(self._values, xs)
        safe = np.minimum(idx, self._values.size - 1)
        hit = (idx < self._values.size) & (self._values[safe] == xs)
        return np.where(hit, self._probs[safe], 0.0)

    def is_point_mass(self) -> bool:
        """True when the entire mass sits on a single value."""
        return self.n_buckets == 1

    # ------------------------------------------------------------------
    # Moments and summary statistics
    # ------------------------------------------------------------------

    def expectation(self, fn: Optional[Callable[[float], float]] = None) -> float:
        """Return ``E[fn(X)]`` (or ``E[X]`` when ``fn`` is omitted).

        ``fn`` is evaluated once per bucket — this is exactly the
        "b evaluations of the cost formula" accounting of the paper.
        """
        if fn is None:
            return float(self._weighted_prefix[-1])
        vals = np.fromiter(
            (fn(float(v)) for v in self._values), dtype=float, count=self._values.size
        )
        return float(np.dot(vals, self._probs))

    def mean(self) -> float:
        """Alias for :meth:`expectation` with no transform."""
        return self.expectation()

    def variance(self) -> float:
        """Return ``Var[X]``."""
        mu = self.expectation()
        return float(np.dot((self._values - mu) ** 2, self._probs))

    def std(self) -> float:
        """Return the standard deviation of ``X``."""
        return math.sqrt(max(self.variance(), 0.0))

    def coefficient_of_variation(self) -> float:
        """Return ``std/|mean|`` — the variability knob the experiments sweep."""
        mu = self.expectation()
        if mu == 0.0:
            return math.inf if self.variance() > 0 else 0.0
        return self.std() / abs(mu)

    def mode(self) -> float:
        """Return the most likely value (smallest such value on ties)."""
        return float(self._values[int(np.argmax(self._probs))])

    def min(self) -> float:
        """Smallest support point."""
        return float(self._values[0])

    def max(self) -> float:
        """Largest support point."""
        return float(self._values[-1])

    # ------------------------------------------------------------------
    # CDF machinery (used by the linear-time expected-cost algorithms)
    # ------------------------------------------------------------------

    def cdf(self, x: float) -> float:
        """Return ``Pr(X <= x)``."""
        idx = np.searchsorted(self._values, x, side="right")
        return float(self._cdf[idx - 1]) if idx > 0 else 0.0

    def sf(self, x: float) -> float:
        """Return the survival function ``Pr(X > x)``."""
        return 1.0 - self.cdf(x)

    def prob_lt(self, x: float) -> float:
        """Return ``Pr(X < x)``."""
        idx = np.searchsorted(self._values, x, side="left")
        return float(self._cdf[idx - 1]) if idx > 0 else 0.0

    def prob_ge(self, x: float) -> float:
        """Return ``Pr(X >= x)``."""
        return 1.0 - self.prob_lt(x)

    def quantile(self, q: float) -> float:
        """Return the smallest value ``v`` with ``Pr(X <= v) >= q``."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile level must be in [0, 1], got {q}")
        idx = int(np.searchsorted(self._cdf, q - 1e-12, side="left"))
        idx = min(idx, self._values.size - 1)
        return float(self._values[idx])

    def partial_expectation_le(self, x: float) -> float:
        """Return the *unnormalised* ``E[X ; X <= x] = Σ_{v<=x} v·Pr(v)``.

        This is the prefix table the paper's O(b_M + b_|A| + b_|B|)
        algorithms maintain; dividing by :meth:`cdf` gives the conditional
        expectation ``E[X | X <= x]``.
        """
        idx = np.searchsorted(self._values, x, side="right")
        return float(self._weighted_prefix[idx - 1]) if idx > 0 else 0.0

    def partial_expectation_ge(self, x: float) -> float:
        """Return the *unnormalised* ``E[X ; X >= x] = Σ_{v>=x} v·Pr(v)``."""
        # partial_expectation_le includes the mass exactly at x, so add it
        # back after subtracting the prefix.
        return (
            self.expectation()
            - self.partial_expectation_le(x)
            + x * self.prob_of(x)
        )

    def conditional_expectation_le(self, x: float) -> float:
        """Return ``E[X | X <= x]``; raises if ``Pr(X <= x) == 0``."""
        p = self.cdf(x)
        if p <= 0.0:
            raise ValueError(f"conditioning event X <= {x} has probability 0")
        return self.partial_expectation_le(x) / p

    def conditional_expectation_ge(self, x: float) -> float:
        """Return ``E[X | X >= x]``; raises if ``Pr(X >= x) == 0``."""
        p = self.prob_ge(x)
        if p <= 0.0:
            raise ValueError(f"conditioning event X >= {x} has probability 0")
        return self.partial_expectation_ge(x) / p

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------

    def map(self, fn: Callable[[float], float]) -> "DiscreteDistribution":
        """Return the distribution of ``fn(X)`` (equal outcomes merged)."""
        new_vals = [fn(float(v)) for v in self._values]
        return DiscreteDistribution(new_vals, self._probs)

    def scale(self, factor: float) -> "DiscreteDistribution":
        """Return the distribution of ``factor · X``."""
        return DiscreteDistribution(self._values * factor, self._probs)

    def shift(self, offset: float) -> "DiscreteDistribution":
        """Return the distribution of ``X + offset``."""
        return DiscreteDistribution(self._values + offset, self._probs)

    def clip(self, lo: Optional[float] = None, hi: Optional[float] = None) -> "DiscreteDistribution":
        """Return the distribution of ``min(max(X, lo), hi)``."""
        vals = self._values
        if lo is not None:
            vals = np.maximum(vals, lo)
        if hi is not None:
            vals = np.minimum(vals, hi)
        return DiscreteDistribution(vals, self._probs)

    def truncate(
        self, lo: Optional[float] = None, hi: Optional[float] = None
    ) -> "DiscreteDistribution":
        """Condition on ``lo <= X <= hi`` (renormalised).

        The start-up-time update: having *observed* that memory is at
        least ``lo`` pages (say), condition the compile-time distribution
        instead of discarding it.  Raises if the event has zero
        probability.
        """
        mask = np.ones(self._values.size, dtype=bool)
        if lo is not None:
            mask &= self._values >= lo
        if hi is not None:
            mask &= self._values <= hi
        if not mask.any():
            raise ValueError("truncation event has probability 0")
        return DiscreteDistribution(self._values[mask], self._probs[mask] / self._probs[mask].sum())

    def entropy(self) -> float:
        """Shannon entropy in nats — a scale-free spread diagnostic."""
        probs = self._probs[self._probs > 0]
        return float(-(probs * np.log(probs)).sum())

    def mixture(
        self, other: "DiscreteDistribution", weight_self: float
    ) -> "DiscreteDistribution":
        """Return the mixture ``weight_self·self + (1-weight_self)·other``."""
        if not 0.0 <= weight_self <= 1.0:
            raise ValueError("mixture weight must be in [0, 1]")
        vals = np.concatenate([self._values, other._values])
        probs = np.concatenate(
            [self._probs * weight_self, other._probs * (1.0 - weight_self)]
        )
        return DiscreteDistribution(vals, probs)

    def convolve(self, other: "DiscreteDistribution") -> "DiscreteDistribution":
        """Return the distribution of ``X + Y`` for independent X, Y.

        Outer-sum over the two supports; the constructor's sort/merge
        pass dedups equal outcomes.  Same enumeration order (left-major)
        as the generic :func:`independent_product` route it replaces.
        """
        vals = np.add.outer(self._values, other._values).ravel()
        probs = np.multiply.outer(self._probs, other._probs).ravel()
        return DiscreteDistribution(vals, probs)

    def multiply(self, other: "DiscreteDistribution") -> "DiscreteDistribution":
        """Return the distribution of ``X · Y`` for independent X, Y."""
        vals = np.multiply.outer(self._values, other._values).ravel()
        probs = np.multiply.outer(self._probs, other._probs).ravel()
        return DiscreteDistribution(vals, probs)

    # ------------------------------------------------------------------
    # Rebucketing (Section 3.6.3)
    # ------------------------------------------------------------------

    def rebucket(self, n_buckets: int, strategy: str = "equidepth") -> "DiscreteDistribution":
        """Coarsen the distribution to at most ``n_buckets`` support points.

        Each new bucket's representative is the probability-weighted mean
        of the merged points, so the overall expectation is preserved
        exactly (the paper's "rebucketing" step when propagating result
        sizes through the dag).

        Parameters
        ----------
        n_buckets:
            Target number of buckets (``>= 1``).
        strategy:
            ``"equidepth"`` merges points into groups of roughly equal
            probability mass; ``"equiwidth"`` merges points into groups of
            equal value-range width.
        """
        if n_buckets < 1:
            raise ValueError("n_buckets must be >= 1")
        if self.n_buckets <= n_buckets:
            return self
        if strategy == "equidepth":
            edges = self._equidepth_edges(n_buckets)
        elif strategy == "equiwidth":
            edges = self._equiwidth_edges(n_buckets)
        else:
            raise ValueError(f"unknown rebucket strategy {strategy!r}")
        return self._merge_by_edges(edges)

    def _equidepth_edges(self, n_buckets: int) -> np.ndarray:
        """Index boundaries splitting support into ~equal-mass groups."""
        targets = np.arange(1, n_buckets) / n_buckets
        idx = np.searchsorted(self._cdf, targets - 1e-12, side="left") + 1
        # Enforce strictly increasing edges: out[i] = max(idx[i], out[i-1]+1)
        # is exactly a running max of (idx[i] - i) shifted back by i.
        ramp = np.arange(idx.size)
        edges = np.maximum.accumulate(idx - ramp) + ramp
        return edges[edges < self._values.size]

    def _equiwidth_edges(self, n_buckets: int) -> np.ndarray:
        """Index boundaries splitting the value range into equal widths."""
        lo, hi = float(self._values[0]), float(self._values[-1])
        if hi == lo:
            return np.empty(0, dtype=np.intp)
        width = (hi - lo) / n_buckets
        cuts = lo + np.arange(1, n_buckets) * width
        idx = np.searchsorted(self._values, cuts, side="right")
        # idx is non-decreasing (cuts ascend), so dedup keeps the first
        # occurrence — the same edge the old skip-if-not-larger loop kept.
        idx = np.unique(idx)
        return idx[(idx > 0) & (idx < self._values.size)]

    def _merge_by_edges(self, edges: Sequence[int]) -> "DiscreteDistribution":
        # Per-segment reductions stay as np.sum / np.dot on slices: the
        # loop runs over *output* buckets (a handful), and the pairwise /
        # BLAS reductions here are part of the numeric contract — a
        # different summation order would shift representatives by an ulp
        # and, through equidepth edge placement, move whole buckets.
        bounds = [0, *(int(e) for e in edges), self._values.size]
        vals: List[float] = []
        probs: List[float] = []
        for a, b in zip(bounds[:-1], bounds[1:]):
            if a >= b:
                continue
            mass = float(self._probs[a:b].sum())
            if mass <= 0.0:
                continue
            rep = float(np.dot(self._values[a:b], self._probs[a:b]) / mass)
            vals.append(rep)
            probs.append(mass)
        return DiscreteDistribution(vals, probs)

    def rebucket_by_edges(self, boundaries: Sequence[float]) -> "DiscreteDistribution":
        """Merge support points using explicit *value* boundaries.

        ``boundaries`` are cut points; support points within the same cell
        of the induced partition are merged (probability-weighted mean
        representative).  Used by level-set-aware bucketing, where the
        boundaries come from cost-formula breakpoints.
        """
        cuts = np.unique(np.asarray(list(boundaries), dtype=float))
        edges = np.unique(np.searchsorted(self._values, cuts, side="left"))
        return self._merge_by_edges(edges[(edges > 0) & (edges < self._values.size)])

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------

    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        """Draw samples; returns a float for ``size=None``, else an array."""
        out = rng.choice(self._values, size=size, p=self._probs)
        if size is None:
            return float(out)
        return out

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self.n_buckets

    def __iter__(self) -> Iterator[Tuple[float, float]]:
        return self.items()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DiscreteDistribution):
            return NotImplemented
        return (
            self._values.shape == other._values.shape
            and bool(np.allclose(self._values, other._values))
            and bool(np.allclose(self._probs, other._probs))
        )

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(
                (tuple(np.round(self._values, 12)), tuple(np.round(self._probs, 12)))
            )
        return self._hash

    def __repr__(self) -> str:
        pairs = ", ".join(f"{v:g}@{p:.3g}" for v, p in self.items())
        if len(pairs) > 120:
            return f"DiscreteDistribution(<{self.n_buckets} buckets>, mean={self.mean():g})"
        return f"DiscreteDistribution({pairs})"


# ----------------------------------------------------------------------
# Constructors
# ----------------------------------------------------------------------


def point_mass(value: float) -> DiscreteDistribution:
    """A degenerate distribution: the LSC "one bucket" special case."""
    return DiscreteDistribution([value], [1.0])


def two_point(
    value_a: float, prob_a: float, value_b: float
) -> DiscreteDistribution:
    """A two-point distribution, e.g. the paper's 2000@0.8 / 700@0.2 memory."""
    return DiscreteDistribution([value_a, value_b], [prob_a, 1.0 - prob_a])


def uniform_over(values: Iterable[float]) -> DiscreteDistribution:
    """Uniform distribution over the given support points."""
    vals = list(values)
    if not vals:
        raise DistributionError("uniform_over needs at least one value")
    return DiscreteDistribution(vals, [1.0 / len(vals)] * len(vals))


def from_samples(
    samples: Iterable[float], n_buckets: int = 10, strategy: str = "equidepth"
) -> DiscreteDistribution:
    """Fit a bucketed distribution to observed samples.

    This models how a DBMS would turn its log of observed run-time
    parameter values (e.g. free buffer pages at query start) into the
    distribution the LEC optimizer consumes.
    """
    arr = np.asarray(list(samples), dtype=float)
    if arr.size == 0:
        raise DistributionError("from_samples needs at least one sample")
    uniq, counts = np.unique(arr, return_counts=True)
    dist = DiscreteDistribution(uniq, counts / counts.sum())
    return dist.rebucket(n_buckets, strategy=strategy)


def discretized_lognormal(
    mean: float,
    cv: float,
    n_buckets: int = 8,
    rng: Optional[np.random.Generator] = None,
    n_samples: int = 20000,
) -> DiscreteDistribution:
    """A bucketed lognormal with the given mean and coefficient of variation.

    Used by the variability-sweep experiments: ``cv`` is the knob that
    controls how spread out the run-time environment is around its mean.
    A ``cv`` of 0 returns a point mass (the LSC regime).
    """
    if mean <= 0:
        raise ValueError("mean must be positive")
    if cv < 0:
        raise ValueError("cv must be non-negative")
    if cv == 0:
        return point_mass(mean)
    sigma2 = math.log(1.0 + cv * cv)
    mu = math.log(mean) - sigma2 / 2.0
    sigma = math.sqrt(sigma2)
    if rng is None:
        rng = np.random.default_rng(7)
    samples = rng.lognormal(mean=mu, sigma=sigma, size=n_samples)
    return from_samples(samples, n_buckets=n_buckets, strategy="equidepth")


def discretized_normal(
    mean: float,
    std: float,
    n_buckets: int = 8,
    lo: Optional[float] = None,
    hi: Optional[float] = None,
) -> DiscreteDistribution:
    """A bucketed normal via equal-probability quantile representatives."""
    if std < 0:
        raise ValueError("std must be non-negative")
    if std == 0:
        return point_mass(mean)
    # Midpoint quantiles of each of n equal-probability slices.
    qs = (np.arange(n_buckets) + 0.5) / n_buckets
    # Inverse normal CDF via Acklam-style rational approximation (scipy-free
    # callers); numpy has no ppf, so use the erfinv route.
    from math import sqrt

    vals = mean + std * sqrt(2.0) * _erfinv(2.0 * qs - 1.0)
    if lo is not None:
        vals = np.maximum(vals, lo)
    if hi is not None:
        vals = np.minimum(vals, hi)
    return DiscreteDistribution(vals, np.full(n_buckets, 1.0 / n_buckets))


def _erfinv(y: np.ndarray) -> np.ndarray:
    """Vectorised inverse error function (Winitzki's approximation, refined).

    Accurate to ~1e-6 after one Newton step — ample for bucket placement.
    """
    y = np.asarray(y, dtype=float)
    a = 0.147
    ln_term = np.log1p(-y * y)
    first = 2.0 / (math.pi * a) + ln_term / 2.0
    x = np.sign(y) * np.sqrt(np.sqrt(first * first - ln_term / a) - first)
    # One Newton refinement: f(x) = erf(x) - y.
    erf_x = np.vectorize(math.erf)(x)
    fprime = 2.0 / math.sqrt(math.pi) * np.exp(-x * x)
    with np.errstate(divide="ignore", invalid="ignore"):
        step = np.where(fprime > 0, (erf_x - y) / fprime, 0.0)
    return x - step


def independent_product(
    fn: Callable[..., float], *dists: DiscreteDistribution
) -> DiscreteDistribution:
    """Distribution of ``fn(X1, ..., Xk)`` for independent ``Xi``.

    The cross product of supports is enumerated, so the result can have up
    to ``Π b_i`` support points; callers propagating result sizes through
    the optimizer dag should :meth:`~DiscreteDistribution.rebucket`
    afterwards (Section 3.6.3).
    """
    if not dists:
        raise ValueError("independent_product needs at least one distribution")
    grids = np.meshgrid(*[d.values for d in dists], indexing="ij")
    prob_grids = np.meshgrid(*[d.probs for d in dists], indexing="ij")
    flat_args = [g.ravel() for g in grids]
    probs = np.ones_like(flat_args[0])
    for pg in prob_grids:
        probs = probs * pg.ravel()
    vals = np.fromiter(
        (fn(*row) for row in zip(*flat_args)), dtype=float, count=flat_args[0].size
    )
    return DiscreteDistribution(vals, probs)
