"""Beyond expectation: risk-sensitive objectives ("what can we expect?").

Choosing the least *expected* cost plan is the risk-neutral corner of
decision theory.  The natural follow-up questions — when does LEC even
differ from LSC, and what if the user cares about variance or tail
latency, not just the mean? — are the subject of the 2002 successor
paper.  This module provides:

* :func:`plan_cost_distribution` — the full distribution of Φ(plan, M),
  not just its mean;
* a family of utility objectives over that distribution
  (:class:`ExpectedCost`, :class:`MeanVariance`, :class:`ExponentialUtility`,
  :class:`QuantileCost`, :class:`WorstCase`);
* :func:`choose_by_utility` — candidate-set optimization for any of them
  (non-linear utilities break the DP's optimal substructure, so the
  correct generic method is scoring an explicitly enumerated plan set);
* :func:`cost_is_memory_invariant` — detects the regime where the plan's
  cost has a single level set over the distribution's support, in which
  case LEC and every LSC choice provably coincide.
"""

from __future__ import annotations

import abc
import math
from typing import Iterable, List, Optional, Tuple

from ..costmodel.model import CostModel
from ..plans.nodes import Plan
from ..plans.query import JoinQuery
from .distributions import DiscreteDistribution

__all__ = [
    "plan_cost_distribution",
    "UtilityObjective",
    "ExpectedCost",
    "MeanVariance",
    "ExponentialUtility",
    "QuantileCost",
    "WorstCase",
    "choose_by_utility",
    "cost_is_memory_invariant",
]


def plan_cost_distribution(
    plan: Plan,
    query: JoinQuery,
    memory: DiscreteDistribution,
    cost_model: Optional[CostModel] = None,
) -> DiscreteDistribution:
    """Distribution of Φ(plan, M) induced by the memory distribution."""
    cm = cost_model if cost_model is not None else CostModel()
    return memory.map(lambda m: cm.plan_cost(plan, query, m))


class UtilityObjective(abc.ABC):
    """A scalar objective over a cost distribution (lower is better)."""

    @abc.abstractmethod
    def score(self, costs: DiscreteDistribution) -> float:
        """Map a cost distribution to a scalar to minimise."""

    @property
    def name(self) -> str:
        """Human-readable objective name."""
        return type(self).__name__


class ExpectedCost(UtilityObjective):
    """Risk-neutral: minimise ``E[C]`` — the LEC objective."""

    def score(self, costs: DiscreteDistribution) -> float:
        return costs.mean()


class MeanVariance(UtilityObjective):
    """Markowitz-style: minimise ``E[C] + λ·Std[C]``.

    ``risk_weight`` λ in cost units per standard deviation; λ=0 recovers
    LEC.
    """

    def __init__(self, risk_weight: float):
        if risk_weight < 0:
            raise ValueError("risk_weight must be non-negative")
        self.risk_weight = risk_weight

    def score(self, costs: DiscreteDistribution) -> float:
        return costs.mean() + self.risk_weight * costs.std()

    @property
    def name(self) -> str:
        return f"MeanVariance(λ={self.risk_weight:g})"


class ExponentialUtility(UtilityObjective):
    """Constant absolute risk aversion: the certainty equivalent
    ``(1/θ)·ln E[exp(θ·C)]``.

    ``theta > 0`` is risk-averse (penalises spread), and the certainty
    equivalent converges to ``E[C]`` as ``theta → 0``.  Costs are
    internally rescaled by their mean so the exponentials stay in range
    for page-count-sized magnitudes.
    """

    def __init__(self, theta: float):
        if theta <= 0:
            raise ValueError("theta must be positive")
        self.theta = theta

    def score(self, costs: DiscreteDistribution) -> float:
        scale = max(costs.mean(), 1.0)
        t = self.theta
        # log E[exp(t·C/scale)] computed stably via log-sum-exp.
        exps = [t * v / scale for v, _ in costs.items()]
        m = max(exps)
        acc = sum(p * math.exp(e - m) for (_, p), e in zip(costs.items(), exps))
        return scale * (m + math.log(acc)) / t

    @property
    def name(self) -> str:
        return f"ExponentialUtility(θ={self.theta:g})"


class QuantileCost(UtilityObjective):
    """Tail objective: minimise the ``q``-quantile of cost (e.g. p95)."""

    def __init__(self, q: float):
        if not 0.0 < q <= 1.0:
            raise ValueError("q must be in (0, 1]")
        self.q = q

    def score(self, costs: DiscreteDistribution) -> float:
        return costs.quantile(self.q)

    @property
    def name(self) -> str:
        return f"QuantileCost(q={self.q:g})"


class WorstCase(UtilityObjective):
    """Robust objective: minimise the maximum cost over the support."""

    def score(self, costs: DiscreteDistribution) -> float:
        return costs.max()


def choose_by_utility(
    plans: Iterable[Plan],
    query: JoinQuery,
    memory: DiscreteDistribution,
    objective: UtilityObjective,
    cost_model: Optional[CostModel] = None,
) -> Tuple[Plan, float, List[Tuple[Plan, float]]]:
    """Score each candidate plan under ``objective`` and pick the minimum.

    Returns ``(best_plan, best_score, all_scored)`` with ``all_scored``
    ascending.  Candidate sets typically come from
    :func:`~repro.optimizer.exhaustive.enumerate_left_deep_plans` (small
    queries) or the Algorithm A/B generators (larger ones).
    """
    cm = cost_model if cost_model is not None else CostModel()
    scored: List[Tuple[Plan, float]] = []
    for plan in plans:
        dist = plan_cost_distribution(plan, query, memory, cost_model=cm)
        scored.append((plan, objective.score(dist)))
    if not scored:
        raise ValueError("no candidate plans supplied")
    scored.sort(key=lambda pair: pair[1])
    best_plan, best_score = scored[0]
    return best_plan, best_score, scored


def cost_is_memory_invariant(
    plan: Plan,
    query: JoinQuery,
    memory: DiscreteDistribution,
    cost_model: Optional[CostModel] = None,
    rel_tol: float = 1e-9,
) -> bool:
    """True when Φ(plan, m) is constant across the distribution's support.

    In that regime the plan has a single level set over the relevant
    parameter range, so its expected cost equals its cost at *any* point
    — and if this holds for all candidate plans, the LEC plan and every
    LSC plan coincide (the "one bucket suffices" degenerate case).
    """
    cm = cost_model if cost_model is not None else CostModel()
    values = [cm.plan_cost(plan, query, m) for m in memory.support()]
    lo, hi = min(values), max(values)
    if lo == hi:
        return True
    return (hi - lo) <= rel_tol * max(abs(hi), 1.0)
