"""Bucketing strategies for partitioning the parameter space (Section 3.7).

The cost of every LEC algorithm scales with the number of buckets ``b``,
so how the parameter distribution is partitioned is the central tuning
knob.  The paper's key insight is that join cost formulas have very few
*level sets* in memory (sort-merge: 3, nested loop: 2), so buckets aligned
with the formulas' breakpoints capture the full distribution's effect with
a handful of representatives, whereas naive partitions need many buckets
to stumble onto the discontinuities.

Strategies provided, each mapping a fine-grained "true" distribution to a
coarse ``b``-bucket one:

* :func:`equal_width_buckets` / :func:`equal_depth_buckets` — the naive
  partitions;
* :func:`level_set_buckets` — boundaries taken from the cost-formula
  breakpoints of the joins the optimizer will consider;
* :func:`refine_adaptive` — the coarse-to-fine scheme the paper sketches:
  start with one bucket and repeatedly split the bucket contributing the
  most cost *uncertainty* for a reference set of candidate plans.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence

import numpy as np

from ..costmodel import formulas
from ..costmodel.estimates import subset_size
from ..plans.properties import JoinMethod
from ..plans.query import JoinQuery
from .distributions import DiscreteDistribution

__all__ = [
    "equal_width_buckets",
    "equal_depth_buckets",
    "level_set_buckets",
    "collect_memory_breakpoints",
    "refine_adaptive",
    "level_set_expectation",
]


def equal_width_buckets(dist: DiscreteDistribution, b: int) -> DiscreteDistribution:
    """Coarsen to ``b`` buckets of equal value-range width."""
    return dist.rebucket(b, strategy="equiwidth")


def equal_depth_buckets(dist: DiscreteDistribution, b: int) -> DiscreteDistribution:
    """Coarsen to ``b`` buckets of (approximately) equal probability mass."""
    return dist.rebucket(b, strategy="equidepth")


def collect_memory_breakpoints(
    query: JoinQuery,
    methods: Sequence[JoinMethod],
    include_sort: bool = True,
    allow_cross_products: bool = False,
) -> List[float]:
    """All memory thresholds at which any considered join's cost jumps.

    Enumerates every connected relation subset the DP would visit, every
    way of splitting off one relation (the left-deep step), and every join
    method, collecting each formula's breakpoints at the subset sizes the
    estimator predicts.  For Example 1.1 this returns exactly
    ``{sqrt(400000), sqrt(1000000), ...}`` — the 633/1000-page boundaries
    of the motivating discussion.
    """
    import itertools

    names = query.relation_names()
    points: set = set()
    for size in range(2, len(names) + 1):
        for combo in itertools.combinations(names, size):
            subset = frozenset(combo)
            if not allow_cross_products and not query.is_connected(subset):
                continue
            for member in combo:
                rest = subset - {member}
                if not allow_cross_products and not query.is_connected(rest):
                    continue
                if not allow_cross_products and not query.predicates_between(
                    rest, member
                ):
                    continue
                lp = subset_size(rest, query).pages
                rp = subset_size(frozenset((member,)), query).pages
                for method in methods:
                    points.update(formulas.join_breakpoints(method, lp, rp))
    if include_sort and query.required_order is not None:
        full = frozenset(names)
        points.update(formulas.sort_breakpoints(subset_size(full, query).pages))
    return sorted(p for p in points if p > formulas.MIN_MEMORY_PAGES)


def level_set_buckets(
    dist: DiscreteDistribution,
    breakpoints: Iterable[float],
    max_buckets: Optional[int] = None,
) -> DiscreteDistribution:
    """Coarsen ``dist`` using cost-formula breakpoints as bucket edges.

    All probability mass between two consecutive breakpoints collapses to
    one representative — within such a cell every considered cost formula
    is constant, so *no information relevant to plan choice is lost*.
    ``max_buckets`` optionally applies a final equi-depth merge when the
    breakpoint set is large.
    """
    out = dist.rebucket_by_edges(list(breakpoints))
    if max_buckets is not None and out.n_buckets > max_buckets:
        out = out.rebucket(max_buckets, strategy="equidepth")
    return out


def refine_adaptive(
    dist: DiscreteDistribution,
    cost_fns: Sequence[Callable[[float], float]],
    b: int,
) -> DiscreteDistribution:
    """Coarse-to-fine bucketing guided by candidate-plan cost spread.

    Starts from a single bucket and repeatedly splits (at the probability
    median) the bucket with the largest ``mass × max-plan-cost-spread``,
    where the spread is measured by evaluating each candidate cost
    function at the bucket's endpoints and representative.  Buckets where
    every candidate's cost is flat are never split — the paper's "we do
    not always need an extremely accurate estimate" observation.
    """
    if b < 1:
        raise ValueError("b must be >= 1")
    if not cost_fns:
        raise ValueError("need at least one candidate cost function")
    # Buckets as index ranges [lo, hi) over the fine distribution.
    vals = dist.values
    probs = dist.probs
    segments: List[tuple] = [(0, len(vals))]

    def spread(lo: int, hi: int) -> float:
        mass = float(probs[lo:hi].sum())
        if mass <= 0 or hi - lo <= 1:
            return 0.0
        test_points = {float(vals[lo]), float(vals[hi - 1])}
        mid = (lo + hi) // 2
        test_points.add(float(vals[mid]))
        worst = 0.0
        for fn in cost_fns:
            evals = [fn(p) for p in test_points]
            worst = max(worst, max(evals) - min(evals))
        return mass * worst

    while len(segments) < b:
        scored = [(spread(lo, hi), i) for i, (lo, hi) in enumerate(segments)]
        scored.sort(reverse=True)
        best_score, idx = scored[0]
        if best_score <= 0.0:
            break
        lo, hi = segments[idx]
        seg_probs = probs[lo:hi]
        cum = np.cumsum(seg_probs)
        half = cum[-1] / 2.0
        cut = lo + int(np.searchsorted(cum, half, side="left")) + 1
        cut = min(max(cut, lo + 1), hi - 1)
        segments[idx : idx + 1] = [(lo, cut), (cut, hi)]

    reps: List[float] = []
    masses: List[float] = []
    for lo, hi in sorted(segments):
        mass = float(probs[lo:hi].sum())
        if mass <= 0:
            continue
        reps.append(float(np.dot(vals[lo:hi], probs[lo:hi]) / mass))
        masses.append(mass)
    return DiscreteDistribution(reps, masses)


def level_set_expectation(
    cost_fn: Callable[[float], float],
    dist: DiscreteDistribution,
    breakpoints: Iterable[float],
) -> float:
    """``E[cost_fn(X)]`` with one evaluation per level set (Section 3.7).

    "In principle, we can compute E[Φ(P)] with ℓ evaluations of the cost
    function, ℓ multiplications, and ℓ−1 additions": when ``cost_fn`` is
    constant between consecutive breakpoints, evaluating one
    representative per occupied cell and weighting by the cell's
    probability mass gives the exact expectation — no matter how many
    support points the distribution has.

    Exactness requires the breakpoint list to cover every discontinuity
    of ``cost_fn`` within the support (use
    :func:`collect_memory_breakpoints` / the formulas' ``*_breakpoints``).
    """
    cuts = sorted(set(float(b) for b in breakpoints))
    edges = [-np.inf, *cuts, np.inf]
    total = 0.0
    values = dist.values
    probs = dist.probs
    for lo, hi in zip(edges[:-1], edges[1:]):
        # Support points in [lo, hi); the last cell is [lo, inf).
        mask = (values >= lo) & (values < hi)
        mass = float(probs[mask].sum())
        if mass <= 0.0:
            continue
        representative = float(values[mask][0])
        total += mass * cost_fn(representative)
    return total
