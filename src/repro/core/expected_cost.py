"""Expected join/sort costs over parameter distributions.

Two routes to ``E[Φ]`` when relation sizes, selectivities *and* memory are
all uncertain (Section 3.6):

* :func:`expected_join_cost_naive` — the generic triple loop over the
  memory, left-size and right-size buckets: ``b_M · b_L · b_R``
  evaluations of the cost formula.
* the ``expected_*_cost`` fast paths — the paper's
  ``O(b_M + b_L + b_R)`` algorithms for sort-merge (Section 3.6.1) and
  nested loop (Section 3.6.2), extended here to Grace hash.  They exploit
  that after integrating memory out analytically, the per-pair cost
  factorises into prefix/suffix sums over one size distribution.

Both routes must agree to floating-point accuracy; experiment E7 checks
the equality and measures the speedup.

Batched evaluation
------------------
The fast paths are implemented as *one* array kernel over a whole batch
of ``(method, left, right)`` requests: operand supports are padded into
2-d arrays, the survival/prefix lookups become ``searchsorted`` +
``take_along_axis`` gathers, and each pair's bucket contributions are
reduced with a per-row ``np.cumsum`` — a strictly sequential,
left-to-right summation, so a pair's cost is bit-identical whether it
is evaluated alone or inside a batch of any size (exact-0.0 padding
terms cannot perturb a sequential float sum).  The single-pair public
functions route through the batch kernel with ``n = 1``; the DP engine
feeds a whole level's candidate partitions through
:func:`expected_join_costs_batched` in one shot (the C7
``O(b_M + b_|A| + b_|B|)`` bound, amortised across candidates).
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..plans.properties import JoinMethod
from .distributions import DiscreteDistribution
from .floats import MASS_EPS, negligible_mass
from .parallel import WorkerPool, chunk_spans

__all__ = [
    "expected_join_cost_naive",
    "expected_join_cost_naive_model",
    "expected_sort_merge_cost",
    "expected_nested_loop_cost",
    "expected_grace_hash_cost",
    "expected_join_cost_fast",
    "expected_join_costs_batched",
    "expected_join_costs_batched_parallel",
    "expected_external_sort_cost",
    "expected_external_sort_cost_model",
    "FAST_METHODS",
]

#: Methods for which a linear-time expected-cost path exists.
FAST_METHODS = frozenset(
    (JoinMethod.SORT_MERGE, JoinMethod.NESTED_LOOP, JoinMethod.GRACE_HASH)
)

#: One fast-path request: (method, left pages dist, right pages dist).
BatchRequest = Tuple[
    JoinMethod, DiscreteDistribution, DiscreteDistribution
]


def expected_join_cost_naive(
    cost_fn: Callable[[JoinMethod, float, float, float], float],
    method: JoinMethod,
    left: DiscreteDistribution,
    right: DiscreteDistribution,
    memory: DiscreteDistribution,
) -> float:
    """``E[Φ(method; L, R, M)]`` by enumerating every bucket triple.

    ``cost_fn`` is called once per ``(l, r, m)`` combination —
    ``b_L·b_R·b_M`` evaluations, the baseline the fast paths beat.
    """
    total = 0.0
    for l, pl in left.items():
        for r, pr in right.items():
            plr = pl * pr
            for m, pm in memory.items():
                total += plr * pm * cost_fn(method, l, r, m)
    return total


def expected_join_cost_naive_model(
    cost_model,
    method: JoinMethod,
    left: DiscreteDistribution,
    right: DiscreteDistribution,
    memory: DiscreteDistribution,
) -> float:
    """Vectorized :func:`expected_join_cost_naive` over a cost model.

    Enumerates the same ``b_L·b_R·b_R`` grid in the same (l, r, m) order
    and accumulates sequentially (``np.add.reduceat``), so the value and
    the model's ``eval_count`` accounting are identical to the scalar
    loop over ``cost_model.join_cost`` — just computed as one array op.
    """
    lv, lp = left.values, left.probs
    rv, rp = right.values, right.probs
    mv, mp = memory.values, memory.probs
    shape = (lv.size, rv.size, mv.size)
    grid_l = np.broadcast_to(lv[:, None, None], shape).ravel()
    grid_r = np.broadcast_to(rv[None, :, None], shape).ravel()
    grid_m = np.broadcast_to(mv[None, None, :], shape).ravel()
    costs = cost_model.join_cost_many(method, grid_l, grid_r, grid_m)
    probs = ((lp[:, None] * rp[None, :])[:, :, None] * mp[None, None, :]).ravel()
    return float(np.cumsum(probs * costs)[-1])


# ----------------------------------------------------------------------
# Shared machinery: survival-function lookups and prefix tables
# ----------------------------------------------------------------------


class _SurvivalTable:
    """O(b_M) preprocessing for O(log b_M) ``Pr(M > x)`` / ``Pr(M >= x)``.

    The paper amortises this table across all dag nodes; callers can build
    it once per memory distribution and reuse it.  The suffix sums
    themselves are cached on the memory distribution instance
    (:meth:`~repro.core.distributions.DiscreteDistribution.sf_arrays`),
    so building a second table over the same distribution is free.
    """

    __slots__ = ("values", "tail_excl", "tail_incl")

    def __init__(self, memory: DiscreteDistribution):
        self.values = memory.values
        # tail_incl[i] = Pr(M >= values[i]); tail_excl[i] = Pr(M > values[i]).
        self.tail_incl, self.tail_excl = memory.sf_arrays()

    def prob_gt(self, x: float) -> float:
        """``Pr(M > x)``."""
        idx = int(np.searchsorted(self.values, x, side="right"))
        if idx >= self.values.size:
            return 0.0
        return float(self.tail_incl[idx])

    def prob_ge(self, x: float) -> float:
        """``Pr(M >= x)``."""
        idx = int(np.searchsorted(self.values, x, side="left"))
        if idx >= self.values.size:
            return 0.0
        return float(self.tail_incl[idx])

    def prob_gt_many(self, xs: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`prob_gt` over an array of thresholds."""
        idx = np.searchsorted(self.values, xs, side="right")
        safe = np.minimum(idx, self.values.size - 1)
        return np.where(idx >= self.values.size, 0.0, self.tail_incl[safe])

    def prob_ge_many(self, xs: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`prob_ge` over an array of thresholds."""
        idx = np.searchsorted(self.values, xs, side="left")
        safe = np.minimum(idx, self.values.size - 1)
        return np.where(idx >= self.values.size, 0.0, self.tail_incl[safe])


class _PaddedBatch:
    """A batch of distributions padded into rectangular arrays.

    ``values``/``pmf``/``cdf``/``wpre`` are (n, width) with rows padded by
    exact zeros past each distribution's ``counts[i]`` buckets; ``valid``
    masks the live entries.  Padding with zero *mass* means every kernel
    contribution computed at a padded slot multiplies to exactly 0.0, so
    sequential row reductions are unaffected by the batch width.
    """

    __slots__ = ("values", "pmf", "cdf", "wpre", "valid", "counts", "width")

    def __init__(self, dists: Sequence[DiscreteDistribution]):
        counts = np.array([d.n_buckets for d in dists], dtype=np.intp)
        width = int(counts.max())
        n = len(dists)
        values = np.zeros((n, width))
        pmf = np.zeros((n, width))
        cdf = np.zeros((n, width))
        wpre = np.zeros((n, width))
        for i, d in enumerate(dists):
            b = counts[i]
            values[i, :b] = d.values
            pmf[i, :b] = d.probs
            cdf[i, :b] = d.cdf_array
            wpre[i, :b] = d.weighted_prefix_array
        self.values = values
        self.pmf = pmf
        self.cdf = cdf
        self.wpre = wpre
        self.valid = np.arange(width) < counts[:, None]
        self.counts = counts
        self.width = width

    def totals(self) -> np.ndarray:
        """Per-row ``(Pr(X <= max), E[X])`` terminal prefix values."""
        last = (self.counts - 1)[:, None]
        return np.take_along_axis(self.wpre, last, axis=1)


def _rank(small: _PaddedBatch, queries: np.ndarray, include_equal: bool) -> np.ndarray:
    """Per (row, query) count of live small-side values <=/ < the query.

    Equivalent to a per-row ``searchsorted`` (the supports are sorted),
    computed as a masked comparison count so one call ranks every query
    of every pair at once.
    """
    if include_equal:
        cmp = small.values[:, None, :] <= queries[:, :, None]
    else:
        cmp = small.values[:, None, :] < queries[:, :, None]
    cmp &= small.valid[:, None, :]
    return cmp.sum(axis=2)


def _gather(prefix: np.ndarray, idx: np.ndarray) -> np.ndarray:
    """``prefix[idx - 1]`` per row, exact 0.0 where ``idx == 0``."""
    safe = np.maximum(idx - 1, 0)
    out = np.take_along_axis(prefix, safe, axis=1)
    return np.where(idx > 0, out, 0.0)


def _row_sums(contrib: np.ndarray) -> np.ndarray:
    """Strictly sequential per-row sums (bit-stable under padding).

    ``np.cumsum`` accumulates left-to-right one element at a time, and
    adding an exact 0.0 never changes a float, so interleaving padding
    zeros anywhere in a row leaves the row total bit-identical to the
    scalar running sum over just the live entries.  (``np.sum`` and
    ``np.add.reduceat`` are pairwise and do NOT have this property.)
    """
    return np.cumsum(contrib, axis=1)[:, -1]


# ----------------------------------------------------------------------
# Sort-merge (Section 3.6.1)
# ----------------------------------------------------------------------


def _sm_half_contribs(
    small: _PaddedBatch,
    large: _PaddedBatch,
    st: _SurvivalTable,
    include_equal: bool,
) -> np.ndarray:
    """Per-(pair, large-bucket) terms of ``E[Φ_SM ; small <(=) large]``.

    Integrating memory out of the 2/4/6-pass formula gives the per-pair
    multiplier ``6 - 2·Pr(M > sqrt(min)) - 2·Pr(M > sqrt(max))``; the
    remaining double sum collapses into prefix sums over the smaller
    side's distribution.
    """
    p_sqrt = st.prob_gt_many(np.sqrt(small.values))
    pref_p = np.cumsum(small.pmf * p_sqrt, axis=1)  # Σ Pr(l)·P(sqrt(l))
    pref_lp = np.cumsum(small.values * small.pmf * p_sqrt, axis=1)
    idx = _rank(small, large.values, include_equal)
    prob_le = _gather(small.cdf, idx)
    exp_le = _gather(small.wpre, idx)
    sum_p = _gather(pref_p, idx)
    sum_lp = _gather(pref_lp, idx)
    p_big = st.prob_gt_many(np.sqrt(large.values))
    base = (6.0 - 2.0 * p_big) * (exp_le + large.values * prob_le)
    correction = -2.0 * (sum_lp + large.values * sum_p)
    contrib = large.pmf * (base + correction)
    return np.where(large.valid & (idx > 0), contrib, 0.0)


def _sm_totals(
    lefts: _PaddedBatch, rights: _PaddedBatch, st: _SurvivalTable
) -> np.ndarray:
    return _row_sums(_sm_half_contribs(lefts, rights, st, True)) + _row_sums(
        _sm_half_contribs(rights, lefts, st, False)
    )


# ----------------------------------------------------------------------
# Nested loop (Section 3.6.2)
# ----------------------------------------------------------------------


def _nl_totals(
    outers: _PaddedBatch, inners: _PaddedBatch, st: _SurvivalTable
) -> np.ndarray:
    """``E[Φ_NL(A, B, M)]`` per pair.

    With ``s = min(a, b)``, the memory integral gives
    ``(a+b)·Pr(M >= s+2) + a(1+b)·Pr(M < s+2)``; conditioning on which
    side is smaller makes ``Pr(M >= s+2)`` a function of one variable,
    and the other side enters only via suffix sums (the paper's ``G_a``).
    Both conditioned branches of each pair land in one concatenated
    segment so the sequential sum follows the scalar accumulation order.
    """
    a_total_e = outers.totals()
    b_total_e = inners.totals()

    # Branch 1: A <= B (s = a).  Suffix stats of B at each a (non-strict).
    idx1 = _rank(inners, outers.values, include_equal=False)
    g_cdf = np.take_along_axis(inners.cdf, np.maximum(idx1 - 1, 0), axis=1)
    g_wpre = np.take_along_axis(inners.wpre, np.maximum(idx1 - 1, 0), axis=1)
    prob_ge = np.where(idx1 > 0, 1.0 - g_cdf, 1.0)
    exp_ge = np.where(idx1 > 0, b_total_e - g_wpre, b_total_e)
    p_fit = st.prob_ge_many(outers.values + 2.0)
    a = outers.values
    fit_term = p_fit * (a * prob_ge + exp_ge)
    nofit_term = (1.0 - p_fit) * (a * prob_ge + a * exp_ge)
    c1 = outers.pmf * (fit_term + nofit_term)
    # Suffix-sum cancellation can leave a true zero at ±1e-17; the same
    # negligible-mass guard as the scalar path zeroes those terms.
    c1 = np.where(outers.valid & (prob_ge > MASS_EPS), c1, 0.0)

    # Branch 2: A > B (s = b).  Suffix stats of A at each b (strict).
    idx2 = _rank(outers, inners.values, include_equal=True)
    g_cdf2 = np.take_along_axis(outers.cdf, np.maximum(idx2 - 1, 0), axis=1)
    g_wpre2 = np.take_along_axis(outers.wpre, np.maximum(idx2 - 1, 0), axis=1)
    prob_gt = np.where(idx2 > 0, 1.0 - g_cdf2, 1.0)
    exp_gt = np.where(idx2 > 0, a_total_e - g_wpre2, a_total_e)
    p_fit2 = st.prob_ge_many(inners.values + 2.0)
    b = inners.values
    fit_term2 = p_fit2 * (exp_gt + b * prob_gt)
    nofit_term2 = (1.0 - p_fit2) * (exp_gt * (1.0 + b))
    c2 = inners.pmf * (fit_term2 + nofit_term2)
    c2 = np.where(inners.valid & (prob_gt > MASS_EPS), c2, 0.0)

    return _row_sums(np.concatenate([c1, c2], axis=1))


# ----------------------------------------------------------------------
# Grace hash (extension of the paper's technique)
# ----------------------------------------------------------------------


def _gh_half_contribs(
    small: _PaddedBatch,
    large: _PaddedBatch,
    st: _SurvivalTable,
    include_equal: bool,
) -> np.ndarray:
    """Per-(pair, large-bucket) terms of the conditioned Grace-hash half.

    The 1/2/4-pass multiplier depends on memory only through the smaller
    input ``s``:  ``Pr(M >= s+2) + 2·(Pr(M >= sqrt(s)) - Pr(M >= s+2)) +
    4·Pr(M < sqrt(s))``, so the same conditioning trick as sort-merge
    applies.
    """
    p_two = st.prob_ge_many(small.values + 2.0)
    p_sqrt = st.prob_ge_many(np.sqrt(small.values))
    mult = p_two + 2.0 * (p_sqrt - p_two) + 4.0 * (1.0 - p_sqrt)
    pref_m = np.cumsum(small.pmf * mult, axis=1)
    pref_lm = np.cumsum(small.values * small.pmf * mult, axis=1)
    idx = _rank(small, large.values, include_equal)
    contrib = large.pmf * (
        _gather(pref_lm, idx) + large.values * _gather(pref_m, idx)
    )
    return np.where(large.valid & (idx > 0), contrib, 0.0)


def _gh_totals(
    lefts: _PaddedBatch, rights: _PaddedBatch, st: _SurvivalTable
) -> np.ndarray:
    return _row_sums(_gh_half_contribs(lefts, rights, st, True)) + _row_sums(
        _gh_half_contribs(rights, lefts, st, False)
    )


_METHOD_TOTALS = {
    JoinMethod.SORT_MERGE: _sm_totals,
    JoinMethod.NESTED_LOOP: _nl_totals,
    JoinMethod.GRACE_HASH: _gh_totals,
}


# ----------------------------------------------------------------------
# Batched evaluation and single-pair wrappers
# ----------------------------------------------------------------------


def expected_join_costs_batched(
    requests: Sequence[BatchRequest],
    memory: DiscreteDistribution,
    survival: Optional[_SurvivalTable] = None,
) -> np.ndarray:
    """One-shot ``E[Φ]`` for a batch of fast-path join requests.

    ``requests`` is a sequence of ``(method, left, right)`` triples; the
    result array is aligned with it.  Requests sharing a method are
    evaluated by one padded array kernel over shared survival prefix
    sums, and each entry is bit-identical to the corresponding
    single-pair ``expected_*_cost`` call (which itself routes through
    this kernel with a batch of one).

    Raises ``ValueError`` for methods outside :data:`FAST_METHODS`.
    """
    st = survival if survival is not None else _SurvivalTable(memory)
    out = np.empty(len(requests), dtype=float)
    by_method: dict = {}
    for i, (method, left, right) in enumerate(requests):
        by_method.setdefault(method, []).append((i, left, right))
    for method, group in by_method.items():
        kernel = _METHOD_TOTALS.get(method)
        if kernel is None:
            raise ValueError(f"no fast expected-cost path for {method}")
        lefts = _PaddedBatch([left for _, left, _ in group])
        rights = _PaddedBatch([right for _, _, right in group])
        totals = kernel(lefts, rights, st)
        out[[i for i, _, _ in group]] = totals
    return out


def _batched_chunk(
    requests: Sequence[BatchRequest],
    memory: DiscreteDistribution,
    survival: Optional[_SurvivalTable],
) -> np.ndarray:
    """One worker's share of a parallel batch (module-level: picklable)."""
    return expected_join_costs_batched(requests, memory, survival=survival)


def expected_join_costs_batched_parallel(
    requests: Sequence[BatchRequest],
    memory: DiscreteDistribution,
    survival: Optional[_SurvivalTable] = None,
    pool: Optional[WorkerPool] = None,
    min_chunk: int = 8,
) -> np.ndarray:
    """:func:`expected_join_costs_batched` fanned out over a worker pool.

    The batch is split into the deterministic contiguous chunks of
    :func:`~repro.core.parallel.chunk_spans` (one per pool worker), each
    chunk runs the ordinary batched kernel against the *same* shared
    survival table, and the chunk results are concatenated in span order.

    Bit-identity to the sequential call is by construction, not by luck:
    a request's value inside the kernel depends only on its own padded
    row, and the per-row reductions are strictly sequential
    ``np.cumsum`` sums that exact-0.0 padding cannot perturb — so the
    chunk width (like the batch width, see
    ``test_batched_bitwise_equals_single``) never leaks into any result,
    and the fixed-order merge reproduces the sequential output array bit
    for bit regardless of worker scheduling.

    Falls back to the sequential kernel when ``pool`` is ``None`` or the
    batch is too small (< ``2 * min_chunk`` requests) for fan-out to pay.
    """
    n = len(requests)
    st = survival if survival is not None else _SurvivalTable(memory)
    if pool is None or pool.closed or n < max(2, 2 * min_chunk):
        return expected_join_costs_batched(requests, memory, survival=st)
    spans = chunk_spans(n, pool.size)
    if len(spans) <= 1:
        return expected_join_costs_batched(requests, memory, survival=st)
    tasks = [(list(requests[a:b]), memory, st) for a, b in spans]
    parts = pool.map_ordered(_batched_chunk, tasks)
    return np.concatenate(parts)


def expected_sort_merge_cost(
    left: DiscreteDistribution,
    right: DiscreteDistribution,
    memory: DiscreteDistribution,
    survival: Optional[_SurvivalTable] = None,
) -> float:
    """``E[Φ_SM(L, R, M)]`` in near-linear time."""
    st = survival if survival is not None else _SurvivalTable(memory)
    return float(_sm_totals(_PaddedBatch([left]), _PaddedBatch([right]), st)[0])


def expected_nested_loop_cost(
    outer: DiscreteDistribution,
    inner: DiscreteDistribution,
    memory: DiscreteDistribution,
    survival: Optional[_SurvivalTable] = None,
) -> float:
    """``E[Φ_NL(A, B, M)]`` in near-linear time."""
    st = survival if survival is not None else _SurvivalTable(memory)
    return float(_nl_totals(_PaddedBatch([outer]), _PaddedBatch([inner]), st)[0])


def expected_grace_hash_cost(
    left: DiscreteDistribution,
    right: DiscreteDistribution,
    memory: DiscreteDistribution,
    survival: Optional[_SurvivalTable] = None,
) -> float:
    """``E[Φ_GH(L, R, M)]`` in near-linear time."""
    st = survival if survival is not None else _SurvivalTable(memory)
    return float(_gh_totals(_PaddedBatch([left]), _PaddedBatch([right]), st)[0])


def expected_join_cost_fast(
    method: JoinMethod,
    left: DiscreteDistribution,
    right: DiscreteDistribution,
    memory: DiscreteDistribution,
    survival: Optional[_SurvivalTable] = None,
) -> float:
    """Linear-time ``E[Φ]`` for the methods that support it.

    Raises ``ValueError`` for methods without a fast path (use
    :func:`expected_join_cost_naive` for those).
    """
    return float(
        expected_join_costs_batched([(method, left, right)], memory, survival)[0]
    )


def expected_external_sort_cost(
    pages: DiscreteDistribution,
    memory: DiscreteDistribution,
    sort_fn: Callable[[float, float], float],
) -> float:
    """``E[sort(P, M)]`` over independent page-count and memory buckets."""
    total = 0.0
    for p, pp in pages.items():
        for m, pm in memory.items():
            total += pp * pm * sort_fn(p, m)
    return total


def expected_external_sort_cost_model(
    cost_model,
    pages: DiscreteDistribution,
    memory: DiscreteDistribution,
) -> float:
    """Vectorized :func:`expected_external_sort_cost` over a cost model.

    Same (p, m) enumeration order and sequential accumulation as the
    scalar loop over ``cost_model.sort_cost`` — identical value and
    ``eval_count`` accounting, one array op.
    """
    pv, pp = pages.values, pages.probs
    mv, mp = memory.values, memory.probs
    shape = (pv.size, mv.size)
    grid_p = np.broadcast_to(pv[:, None], shape).ravel()
    grid_m = np.broadcast_to(mv[None, :], shape).ravel()
    costs = cost_model.sort_cost_many(grid_p, grid_m)
    probs = (pp[:, None] * mp[None, :]).ravel()
    return float(np.cumsum(probs * costs)[-1])
