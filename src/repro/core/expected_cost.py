"""Expected join/sort costs over parameter distributions.

Two routes to ``E[Φ]`` when relation sizes, selectivities *and* memory are
all uncertain (Section 3.6):

* :func:`expected_join_cost_naive` — the generic triple loop over the
  memory, left-size and right-size buckets: ``b_M · b_L · b_R``
  evaluations of the cost formula.
* the ``expected_*_cost`` fast paths — the paper's
  ``O(b_M + b_L + b_R)`` algorithms for sort-merge (Section 3.6.1) and
  nested loop (Section 3.6.2), extended here to Grace hash.  They exploit
  that after integrating memory out analytically, the per-pair cost
  factorises into prefix/suffix sums over one size distribution.

Both routes must agree to floating-point accuracy; experiment E7 checks
the equality and measures the speedup.
"""

from __future__ import annotations

import math
from typing import Callable, Optional

import numpy as np

from ..plans.properties import JoinMethod
from .distributions import DiscreteDistribution
from .floats import negligible_mass

__all__ = [
    "expected_join_cost_naive",
    "expected_sort_merge_cost",
    "expected_nested_loop_cost",
    "expected_grace_hash_cost",
    "expected_join_cost_fast",
    "expected_external_sort_cost",
    "FAST_METHODS",
]

#: Methods for which a linear-time expected-cost path exists.
FAST_METHODS = frozenset(
    (JoinMethod.SORT_MERGE, JoinMethod.NESTED_LOOP, JoinMethod.GRACE_HASH)
)


def expected_join_cost_naive(
    cost_fn: Callable[[JoinMethod, float, float, float], float],
    method: JoinMethod,
    left: DiscreteDistribution,
    right: DiscreteDistribution,
    memory: DiscreteDistribution,
) -> float:
    """``E[Φ(method; L, R, M)]`` by enumerating every bucket triple.

    ``cost_fn`` is called once per ``(l, r, m)`` combination —
    ``b_L·b_R·b_M`` evaluations, the baseline the fast paths beat.
    """
    total = 0.0
    for l, pl in left.items():
        for r, pr in right.items():
            plr = pl * pr
            for m, pm in memory.items():
                total += plr * pm * cost_fn(method, l, r, m)
    return total


# ----------------------------------------------------------------------
# Shared machinery: survival-function lookups and prefix tables
# ----------------------------------------------------------------------


class _SurvivalTable:
    """O(b_M) preprocessing for O(log b_M) ``Pr(M > x)`` / ``Pr(M >= x)``.

    The paper amortises this table across all dag nodes; callers can build
    it once per memory distribution and reuse it.
    """

    __slots__ = ("values", "tail_excl", "tail_incl")

    def __init__(self, memory: DiscreteDistribution):
        self.values = memory.values
        probs = memory.probs
        # tail_incl[i] = Pr(M >= values[i]); tail_excl[i] = Pr(M > values[i]).
        suffix = np.concatenate([np.cumsum(probs[::-1])[::-1], [0.0]])
        self.tail_incl = suffix[:-1]
        self.tail_excl = suffix[1:]

    def prob_gt(self, x: float) -> float:
        """``Pr(M > x)``."""
        idx = int(np.searchsorted(self.values, x, side="right"))
        if idx >= self.values.size:
            return 0.0
        return float(self.tail_incl[idx])

    def prob_ge(self, x: float) -> float:
        """``Pr(M >= x)``."""
        idx = int(np.searchsorted(self.values, x, side="left"))
        if idx >= self.values.size:
            return 0.0
        return float(self.tail_incl[idx])


def _prefix_tables(dist: DiscreteDistribution):
    """Return (values, pmf, cdf, weighted prefix E[X; X<=v]) arrays."""
    vals = dist.values
    pmf = dist.probs
    cdf = np.cumsum(pmf)
    wpre = np.cumsum(vals * pmf)
    return vals, pmf, cdf, wpre


def _le_stats(vals, cdf, wpre, x: float, strict: bool = False):
    """(Pr(X<=x), E[X; X<=x]) — or strict '<' variants."""
    side = "left" if strict else "right"
    idx = int(np.searchsorted(vals, x, side=side))
    if idx == 0:
        return 0.0, 0.0
    return float(cdf[idx - 1]), float(wpre[idx - 1])


# ----------------------------------------------------------------------
# Sort-merge (Section 3.6.1)
# ----------------------------------------------------------------------


def expected_sort_merge_cost(
    left: DiscreteDistribution,
    right: DiscreteDistribution,
    memory: DiscreteDistribution,
    survival: Optional[_SurvivalTable] = None,
) -> float:
    """``E[Φ_SM(L, R, M)]`` in near-linear time.

    Integrating memory out of the 2/4/6-pass formula gives the per-pair
    multiplier ``6 - 2·Pr(M > sqrt(min)) - 2·Pr(M > sqrt(max))``; the
    remaining double sum collapses into prefix sums over the smaller
    side's distribution.
    """
    st = survival if survival is not None else _SurvivalTable(memory)
    return _sm_half(left, right, st, include_equal=True) + _sm_half(
        right, left, st, include_equal=False
    )


def _sm_half(
    small: DiscreteDistribution,
    large: DiscreteDistribution,
    st: _SurvivalTable,
    include_equal: bool,
) -> float:
    """``E[Φ_SM ; small <(=) large]`` with ``small`` the conditioned-min side."""
    s_vals, s_pmf, s_cdf, s_wpre = _prefix_tables(small)
    # Per-support-point survival at sqrt(value), plus the weighted variants
    # needed to fold  -2·P(sqrt(l))  into the prefix sums.
    p_sqrt = np.fromiter(
        (st.prob_gt(math.sqrt(v)) for v in s_vals), dtype=float, count=s_vals.size
    )
    pref_p = np.cumsum(s_pmf * p_sqrt)  # Σ Pr(l)·P(sqrt(l))
    pref_lp = np.cumsum(s_vals * s_pmf * p_sqrt)  # Σ l·Pr(l)·P(sqrt(l))

    total = 0.0
    for r, pr in large.items():
        side = "right" if include_equal else "left"
        idx = int(np.searchsorted(s_vals, r, side=side))
        if idx == 0:
            continue
        prob_le = float(s_cdf[idx - 1])
        exp_le = float(s_wpre[idx - 1])
        sum_p = float(pref_p[idx - 1])
        sum_lp = float(pref_lp[idx - 1])
        p_big = st.prob_gt(math.sqrt(r))
        base = (6.0 - 2.0 * p_big) * (exp_le + r * prob_le)
        correction = -2.0 * (sum_lp + r * sum_p)
        total += pr * (base + correction)
    return total


# ----------------------------------------------------------------------
# Nested loop (Section 3.6.2)
# ----------------------------------------------------------------------


def expected_nested_loop_cost(
    outer: DiscreteDistribution,
    inner: DiscreteDistribution,
    memory: DiscreteDistribution,
    survival: Optional[_SurvivalTable] = None,
) -> float:
    """``E[Φ_NL(A, B, M)]`` in near-linear time.

    With ``s = min(a, b)``, the memory integral gives
    ``(a+b)·Pr(M >= s+2) + a(1+b)·Pr(M < s+2)``; conditioning on which
    side is smaller makes ``Pr(M >= s+2)`` a function of one variable,
    and the other side enters only via suffix sums (the paper's ``G_a``).
    """
    st = survival if survival is not None else _SurvivalTable(memory)
    a_vals, a_pmf, a_cdf, a_wpre = _prefix_tables(outer)
    b_vals, b_pmf, b_cdf, b_wpre = _prefix_tables(inner)
    a_total_e = float(a_wpre[-1])
    b_total_e = float(b_wpre[-1])

    total = 0.0
    # Branch 1: A <= B (s = a).  Suffix stats of B at each a.
    for a, pa in outer.items():
        prob_ge, exp_ge = _ge_stats(b_vals, b_cdf, b_wpre, b_total_e, a, strict=False)
        if negligible_mass(prob_ge):
            # Suffix-sum cancellation can leave a true zero at ±1e-17;
            # an exact == 0.0 guard would keep such noise in the sum.
            continue
        p_fit = st.prob_ge(a + 2.0)
        fit_term = p_fit * (a * prob_ge + exp_ge)
        nofit_term = (1.0 - p_fit) * (a * prob_ge + a * exp_ge)
        total += pa * (fit_term + nofit_term)
    # Branch 2: A > B (s = b).  Suffix stats of A at each b (strict).
    for b, pb in inner.items():
        prob_gt, exp_gt = _ge_stats(a_vals, a_cdf, a_wpre, a_total_e, b, strict=True)
        if negligible_mass(prob_gt):
            continue
        p_fit = st.prob_ge(b + 2.0)
        fit_term = p_fit * (exp_gt + b * prob_gt)
        nofit_term = (1.0 - p_fit) * (exp_gt * (1.0 + b))
        total += pb * (fit_term + nofit_term)
    return total


def _ge_stats(vals, cdf, wpre, total_e, x: float, strict: bool):
    """(Pr(X >= x), E[X; X >= x]) — or strict '>' variants."""
    side = "right" if strict else "left"
    idx = int(np.searchsorted(vals, x, side=side))
    if idx == 0:
        return 1.0, total_e
    prob = 1.0 - float(cdf[idx - 1])
    exp = total_e - float(wpre[idx - 1])
    return prob, exp


# ----------------------------------------------------------------------
# Grace hash (extension of the paper's technique)
# ----------------------------------------------------------------------


def expected_grace_hash_cost(
    left: DiscreteDistribution,
    right: DiscreteDistribution,
    memory: DiscreteDistribution,
    survival: Optional[_SurvivalTable] = None,
) -> float:
    """``E[Φ_GH(L, R, M)]`` in near-linear time.

    The 1/2/4-pass multiplier depends on memory only through the smaller
    input ``s``:  ``Pr(M >= s+2) + 2·(Pr(M >= sqrt(s)) - Pr(M >= s+2)) +
    4·Pr(M < sqrt(s))``, so the same conditioning trick as sort-merge
    applies.
    """
    st = survival if survival is not None else _SurvivalTable(memory)
    return _gh_half(left, right, st, include_equal=True) + _gh_half(
        right, left, st, include_equal=False
    )


def _gh_half(
    small: DiscreteDistribution,
    large: DiscreteDistribution,
    st: _SurvivalTable,
    include_equal: bool,
) -> float:
    s_vals, s_pmf, s_cdf, s_wpre = _prefix_tables(small)
    mult = np.fromiter(
        (
            st.prob_ge(v + 2.0)
            + 2.0 * (st.prob_ge(math.sqrt(v)) - st.prob_ge(v + 2.0))
            + 4.0 * (1.0 - st.prob_ge(math.sqrt(v)))
            for v in s_vals
        ),
        dtype=float,
        count=s_vals.size,
    )
    pref_m = np.cumsum(s_pmf * mult)
    pref_lm = np.cumsum(s_vals * s_pmf * mult)
    total = 0.0
    for r, pr in large.items():
        side = "right" if include_equal else "left"
        idx = int(np.searchsorted(s_vals, r, side=side))
        if idx == 0:
            continue
        total += pr * (float(pref_lm[idx - 1]) + r * float(pref_m[idx - 1]))
    return total


# ----------------------------------------------------------------------
# Dispatch and sorts
# ----------------------------------------------------------------------


def expected_join_cost_fast(
    method: JoinMethod,
    left: DiscreteDistribution,
    right: DiscreteDistribution,
    memory: DiscreteDistribution,
    survival: Optional[_SurvivalTable] = None,
) -> float:
    """Linear-time ``E[Φ]`` for the methods that support it.

    Raises ``ValueError`` for methods without a fast path (use
    :func:`expected_join_cost_naive` for those).
    """
    if method is JoinMethod.SORT_MERGE:
        return expected_sort_merge_cost(left, right, memory, survival)
    if method is JoinMethod.NESTED_LOOP:
        return expected_nested_loop_cost(left, right, memory, survival)
    if method is JoinMethod.GRACE_HASH:
        return expected_grace_hash_cost(left, right, memory, survival)
    raise ValueError(f"no fast expected-cost path for {method}")


def expected_external_sort_cost(
    pages: DiscreteDistribution,
    memory: DiscreteDistribution,
    sort_fn: Callable[[float, float], float],
) -> float:
    """``E[sort(P, M)]`` over independent page-count and memory buckets."""
    total = 0.0
    for p, pp in pages.items():
        for m, pm in memory.items():
            total += pp * pm * sort_fn(p, m)
    return total
