"""Markov-chain models for parameters that change *during* execution.

Section 3.5 of the paper drops the assumption that available memory stays
constant while a plan runs: execution proceeds in *phases* (one per join),
memory is constant within a phase but may change between phases, and the
change is governed by a time-homogeneous transition probability that
depends only on the current value ("reasonable for 24x7 systems in stable
operational mode").

:class:`MarkovParameter` packages an initial distribution plus a
transition matrix over a fixed state set, and exposes the two views the
algorithms need:

* ``marginal(k)`` — the distribution of the parameter in phase ``k``.
  Because expectation distributes over addition, Algorithm C only ever
  needs these per-phase marginals to compute the exact expected cost of a
  left-deep plan (Theorem 3.4), even though phases are *not* independent.
* ``sequences(length)`` — explicit enumeration of all ``b^length`` value
  sequences with their probabilities, used by the tests and experiments to
  verify the marginal-based computation against brute force.

Both views are array programs: ``marginals_many`` returns a whole stack
of phase marginals at once (one matrix multiply per *new* phase, cached
across calls), and ``sequence_table`` materializes the brute-force
enumeration as two arrays built from a row-major index grid — the same
left-to-right per-step multiplies as the scalar walk, so probabilities
match the historical generator bit for bit (multiplying an exact ``0.0``
by any finite factor stays ``0.0``, which subsumes the old early-break).
``sequences`` itself is a thin generator over that table.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .distributions import DiscreteDistribution

__all__ = ["MarkovParameter", "random_walk_chain", "sticky_chain"]


class MarkovParameter:
    """A parameter evolving between plan phases under a Markov chain.

    Parameters
    ----------
    states:
        Parameter values (e.g. memory sizes in pages), strictly increasing.
    initial:
        Probability of each state at phase 0 (when the first join starts).
    transition:
        Row-stochastic matrix: ``transition[i, j]`` is the probability of
        moving from ``states[i]`` to ``states[j]`` between consecutive
        phases.
    """

    def __init__(
        self,
        states: Sequence[float],
        initial: Sequence[float],
        transition: Sequence[Sequence[float]],
    ):
        self.states = np.asarray(states, dtype=float)
        if self.states.ndim != 1 or self.states.size == 0:
            raise ValueError("states must be a non-empty 1-d sequence")
        if np.any(np.diff(self.states) <= 0):
            raise ValueError("states must be strictly increasing")
        self.initial = np.asarray(initial, dtype=float)
        self.transition = np.asarray(transition, dtype=float)
        n = self.states.size
        if self.initial.shape != (n,):
            raise ValueError(f"initial must have shape ({n},)")
        if self.transition.shape != (n, n):
            raise ValueError(f"transition must have shape ({n}, {n})")
        if np.any(self.initial < 0) or not np.isclose(self.initial.sum(), 1.0):
            raise ValueError("initial must be a probability vector")
        if np.any(self.transition < 0) or not np.allclose(
            self.transition.sum(axis=1), 1.0
        ):
            raise ValueError("transition rows must be probability vectors")
        self._marginal_cache: List[np.ndarray] = [self.initial.copy()]

    @property
    def n_states(self) -> int:
        """Number of parameter values the chain moves between."""
        return int(self.states.size)

    # ------------------------------------------------------------------

    def _marginal_vector(self, phase: int) -> np.ndarray:
        if phase < 0:
            raise ValueError("phase must be >= 0")
        while len(self._marginal_cache) <= phase:
            self._marginal_cache.append(self._marginal_cache[-1] @ self.transition)
        return self._marginal_cache[phase]

    def marginal(self, phase: int) -> DiscreteDistribution:
        """Distribution of the parameter value during phase ``phase``.

        Phase 0 is the first join executed (the bottom of a left-deep
        plan); each subsequent join is one phase later.
        """
        return DiscreteDistribution(self.states, self._marginal_vector(phase))

    def marginal_matrix(self, n_phases: int) -> np.ndarray:
        """Phase marginals ``0..n_phases-1`` stacked as a matrix.

        Row ``k`` is exactly ``_marginal_vector(k)`` (the same cached
        ``@ transition`` recurrence), so batch consumers see the very
        floats the per-phase path produces.
        """
        if n_phases < 1:
            raise ValueError("n_phases must be >= 1")
        self._marginal_vector(n_phases - 1)
        return np.vstack(self._marginal_cache[:n_phases])

    def marginals_many(self, phases: Sequence[int]) -> np.ndarray:
        """Marginal probability vectors for a batch of phases, stacked.

        ``out[i]`` equals ``_marginal_vector(phases[i])`` — one cache
        fill up to ``max(phases)``, then a fancy-index gather.
        """
        idx = np.asarray(phases, dtype=int)
        if idx.ndim != 1:
            raise ValueError("phases must be a 1-d sequence")
        if idx.size == 0:
            return np.empty((0, self.n_states))
        if np.any(idx < 0):
            raise ValueError("phase must be >= 0")
        matrix = self.marginal_matrix(int(idx.max()) + 1)
        return matrix[idx]

    def stationary(self, tol: float = 1e-12, max_iter: int = 100000) -> DiscreteDistribution:
        """Stationary distribution via power iteration."""
        vec = self.initial.copy()
        for _ in range(max_iter):
            nxt = vec @ self.transition
            if np.max(np.abs(nxt - vec)) < tol:
                vec = nxt
                break
            vec = nxt
        return DiscreteDistribution(self.states, vec / vec.sum())

    # ------------------------------------------------------------------

    def sequence_table(self, length: int) -> Tuple[np.ndarray, np.ndarray]:
        """All positive-probability value sequences as ``(values, probs)``.

        ``values`` has shape ``(k, length)`` (one row per sequence, in
        the same row-major order ``itertools.product`` would visit) and
        ``probs`` shape ``(k,)``.  Probabilities are built with the same
        left-to-right per-step multiplies as the scalar walk — step
        ``j`` multiplies in ``transition[s_{j-1}, s_j]`` across all rows
        at once — so each surviving row's probability is bit-identical
        to the historical generator's.  Zero-probability sequences are
        dropped (as the generator skipped them); an exact ``0.0`` can
        only stay ``0.0`` under further finite multiplies, so the old
        early-break changes nothing.
        """
        if length < 0:
            raise ValueError("length must be >= 0")
        if length == 0:
            return np.empty((1, 0)), np.ones(1)
        n = self.n_states
        # Row-major index grid == itertools.product(range(n), repeat=length).
        grid = (
            np.indices((n,) * length).reshape(length, n**length).T
        )
        probs = self.initial[grid[:, 0]].copy()
        for j in range(1, length):
            probs *= self.transition[grid[:, j - 1], grid[:, j]]
        # Exact zero on purpose: only a true 0.0 product may be dropped,
        # mirroring the scalar walk's branch prune — a tolerance here
        # would delete real (tiny) sequences.
        keep = probs != 0.0  # optlint: disable=FLT001
        return self.states[grid[keep]], probs[keep]

    def sequences(self, length: int) -> Iterator[Tuple[Tuple[float, ...], float]]:
        """Enumerate all value sequences of ``length`` phases with probability.

        This is the ``b_M^{n-1}`` explosion the paper warns about; it is
        exposed for verification (Theorem 3.4 tests) and for small exact
        experiments only.  A thin generator over :meth:`sequence_table`
        — same order, same tuples, same probabilities.
        """
        values, probs = self.sequence_table(length)
        for row, p in zip(values, probs):
            yield tuple(float(v) for v in row), float(p)

    def sample_path(self, length: int, rng: np.random.Generator) -> List[float]:
        """Sample one trajectory of parameter values across ``length`` phases."""
        if length <= 0:
            return []
        idx = int(rng.choice(self.n_states, p=self.initial))
        path = [float(self.states[idx])]
        for _ in range(length - 1):
            idx = int(rng.choice(self.n_states, p=self.transition[idx]))
            path.append(float(self.states[idx]))
        return path

    # ------------------------------------------------------------------

    @classmethod
    def static(cls, dist: DiscreteDistribution) -> "MarkovParameter":
        """A chain that never moves — the static-parameter special case."""
        n = dist.n_buckets
        return cls(dist.support(), dist.probs, np.eye(n))

    def __repr__(self) -> str:
        return (
            f"MarkovParameter(states={[float(s) for s in self.states]}, "
            f"n={self.n_states})"
        )


def random_walk_chain(
    states: Sequence[float],
    initial: Optional[Sequence[float]] = None,
    move_prob: float = 0.2,
) -> MarkovParameter:
    """A lazy random walk over the state ladder.

    With probability ``move_prob`` the parameter steps to an adjacent
    state (split evenly up/down, reflecting at the ends); otherwise it
    stays put.  ``move_prob`` is the volatility knob experiment E5 sweeps.
    """
    states = list(states)
    n = len(states)
    if n == 0:
        raise ValueError("states must be non-empty")
    if not 0.0 <= move_prob <= 1.0:
        raise ValueError("move_prob must be in [0, 1]")
    trans = np.zeros((n, n))
    for i in range(n):
        if n == 1:
            trans[i, i] = 1.0
            continue
        up = i + 1 if i + 1 < n else i - 1
        down = i - 1 if i - 1 >= 0 else i + 1
        trans[i, i] += 1.0 - move_prob
        trans[i, up] += move_prob / 2.0
        trans[i, down] += move_prob / 2.0
    if initial is None:
        initial = np.full(n, 1.0 / n)
    return MarkovParameter(states, initial, trans)


def sticky_chain(
    dist: DiscreteDistribution, stickiness: float
) -> MarkovParameter:
    """A chain whose every row mixes "stay" with "redraw from ``dist``".

    With probability ``stickiness`` the value persists; otherwise a fresh
    value is drawn from ``dist``.  The marginal at every phase equals
    ``dist`` (it is stationary), which isolates the effect of *temporal
    correlation* from the effect of marginal variance.
    """
    if not 0.0 <= stickiness <= 1.0:
        raise ValueError("stickiness must be in [0, 1]")
    n = dist.n_buckets
    redraw = np.tile(dist.probs, (n, 1))
    trans = stickiness * np.eye(n) + (1.0 - stickiness) * redraw
    return MarkovParameter(dist.support(), dist.probs, trans)
