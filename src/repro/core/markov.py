"""Markov-chain models for parameters that change *during* execution.

Section 3.5 of the paper drops the assumption that available memory stays
constant while a plan runs: execution proceeds in *phases* (one per join),
memory is constant within a phase but may change between phases, and the
change is governed by a time-homogeneous transition probability that
depends only on the current value ("reasonable for 24x7 systems in stable
operational mode").

:class:`MarkovParameter` packages an initial distribution plus a
transition matrix over a fixed state set, and exposes the two views the
algorithms need:

* ``marginal(k)`` — the distribution of the parameter in phase ``k``.
  Because expectation distributes over addition, Algorithm C only ever
  needs these per-phase marginals to compute the exact expected cost of a
  left-deep plan (Theorem 3.4), even though phases are *not* independent.
* ``sequences(length)`` — explicit enumeration of all ``b^length`` value
  sequences with their probabilities, used by the tests and experiments to
  verify the marginal-based computation against brute force.
"""

from __future__ import annotations

import itertools
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .distributions import DiscreteDistribution

__all__ = ["MarkovParameter", "random_walk_chain", "sticky_chain"]


class MarkovParameter:
    """A parameter evolving between plan phases under a Markov chain.

    Parameters
    ----------
    states:
        Parameter values (e.g. memory sizes in pages), strictly increasing.
    initial:
        Probability of each state at phase 0 (when the first join starts).
    transition:
        Row-stochastic matrix: ``transition[i, j]`` is the probability of
        moving from ``states[i]`` to ``states[j]`` between consecutive
        phases.
    """

    def __init__(
        self,
        states: Sequence[float],
        initial: Sequence[float],
        transition: Sequence[Sequence[float]],
    ):
        self.states = np.asarray(states, dtype=float)
        if self.states.ndim != 1 or self.states.size == 0:
            raise ValueError("states must be a non-empty 1-d sequence")
        if np.any(np.diff(self.states) <= 0):
            raise ValueError("states must be strictly increasing")
        self.initial = np.asarray(initial, dtype=float)
        self.transition = np.asarray(transition, dtype=float)
        n = self.states.size
        if self.initial.shape != (n,):
            raise ValueError(f"initial must have shape ({n},)")
        if self.transition.shape != (n, n):
            raise ValueError(f"transition must have shape ({n}, {n})")
        if np.any(self.initial < 0) or not np.isclose(self.initial.sum(), 1.0):
            raise ValueError("initial must be a probability vector")
        if np.any(self.transition < 0) or not np.allclose(
            self.transition.sum(axis=1), 1.0
        ):
            raise ValueError("transition rows must be probability vectors")
        self._marginal_cache: List[np.ndarray] = [self.initial.copy()]

    @property
    def n_states(self) -> int:
        """Number of parameter values the chain moves between."""
        return int(self.states.size)

    # ------------------------------------------------------------------

    def _marginal_vector(self, phase: int) -> np.ndarray:
        if phase < 0:
            raise ValueError("phase must be >= 0")
        while len(self._marginal_cache) <= phase:
            self._marginal_cache.append(self._marginal_cache[-1] @ self.transition)
        return self._marginal_cache[phase]

    def marginal(self, phase: int) -> DiscreteDistribution:
        """Distribution of the parameter value during phase ``phase``.

        Phase 0 is the first join executed (the bottom of a left-deep
        plan); each subsequent join is one phase later.
        """
        return DiscreteDistribution(self.states, self._marginal_vector(phase))

    def stationary(self, tol: float = 1e-12, max_iter: int = 100000) -> DiscreteDistribution:
        """Stationary distribution via power iteration."""
        vec = self.initial.copy()
        for _ in range(max_iter):
            nxt = vec @ self.transition
            if np.max(np.abs(nxt - vec)) < tol:
                vec = nxt
                break
            vec = nxt
        return DiscreteDistribution(self.states, vec / vec.sum())

    # ------------------------------------------------------------------

    def sequences(self, length: int) -> Iterator[Tuple[Tuple[float, ...], float]]:
        """Enumerate all value sequences of ``length`` phases with probability.

        This is the ``b_M^{n-1}`` explosion the paper warns about; it is
        exposed for verification (Theorem 3.4 tests) and for small exact
        experiments only.
        """
        if length < 0:
            raise ValueError("length must be >= 0")
        if length == 0:
            yield (), 1.0
            return
        n = self.n_states
        for idx_seq in itertools.product(range(n), repeat=length):
            p = float(self.initial[idx_seq[0]])
            for a, b in zip(idx_seq[:-1], idx_seq[1:]):
                p *= float(self.transition[a, b])
                if p == 0.0:
                    break
            if p == 0.0:
                continue
            yield tuple(float(self.states[i]) for i in idx_seq), p

    def sample_path(self, length: int, rng: np.random.Generator) -> List[float]:
        """Sample one trajectory of parameter values across ``length`` phases."""
        if length <= 0:
            return []
        idx = int(rng.choice(self.n_states, p=self.initial))
        path = [float(self.states[idx])]
        for _ in range(length - 1):
            idx = int(rng.choice(self.n_states, p=self.transition[idx]))
            path.append(float(self.states[idx]))
        return path

    # ------------------------------------------------------------------

    @classmethod
    def static(cls, dist: DiscreteDistribution) -> "MarkovParameter":
        """A chain that never moves — the static-parameter special case."""
        n = dist.n_buckets
        return cls(dist.support(), dist.probs, np.eye(n))

    def __repr__(self) -> str:
        return (
            f"MarkovParameter(states={[float(s) for s in self.states]}, "
            f"n={self.n_states})"
        )


def random_walk_chain(
    states: Sequence[float],
    initial: Optional[Sequence[float]] = None,
    move_prob: float = 0.2,
) -> MarkovParameter:
    """A lazy random walk over the state ladder.

    With probability ``move_prob`` the parameter steps to an adjacent
    state (split evenly up/down, reflecting at the ends); otherwise it
    stays put.  ``move_prob`` is the volatility knob experiment E5 sweeps.
    """
    states = list(states)
    n = len(states)
    if n == 0:
        raise ValueError("states must be non-empty")
    if not 0.0 <= move_prob <= 1.0:
        raise ValueError("move_prob must be in [0, 1]")
    trans = np.zeros((n, n))
    for i in range(n):
        if n == 1:
            trans[i, i] = 1.0
            continue
        up = i + 1 if i + 1 < n else i - 1
        down = i - 1 if i - 1 >= 0 else i + 1
        trans[i, i] += 1.0 - move_prob
        trans[i, up] += move_prob / 2.0
        trans[i, down] += move_prob / 2.0
    if initial is None:
        initial = np.full(n, 1.0 / n)
    return MarkovParameter(states, initial, trans)


def sticky_chain(
    dist: DiscreteDistribution, stickiness: float
) -> MarkovParameter:
    """A chain whose every row mixes "stay" with "redraw from ``dist``".

    With probability ``stickiness`` the value persists; otherwise a fresh
    value is drawn from ``dist``.  The marginal at every phase equals
    ``dist`` (it is stationary), which isolates the effect of *temporal
    correlation* from the effect of marginal variance.
    """
    if not 0.0 <= stickiness <= 1.0:
        raise ValueError("stickiness must be in [0, 1]")
    n = dist.n_buckets
    redraw = np.tile(dist.probs, (n, 1))
    trans = stickiness * np.eye(n) + (1.0 - stickiness) * redraw
    return MarkovParameter(dist.support(), dist.probs, trans)
