"""Discrete Bayesian networks over optimizer parameters (Section 4).

The paper assumes parameters are independent, noting: "If there are some
dependencies between the variables, but not too many, we can still
describe the distribution succinctly using a Bayesian network [Pea88].
We believe that the techniques that we present here will also be
applicable to that case."  This module makes that belief concrete: a
small discrete Bayes net (:class:`DiscreteBayesNet`) describes the joint
distribution of memory, selectivities and sizes — e.g. a latent *system
load* variable that simultaneously depresses available memory and shifts
selectivities — and :class:`~repro.optimizer.costers` gains a
``BayesNetCoster`` (see :mod:`repro.optimizer.dependent`) that computes
exact expected costs under the dependent joint.

Networks are meant to be small (a handful of nodes, a few values each);
inference is by exact joint enumeration, which is both simple and — at
optimizer scale — fast.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from .distributions import DiscreteDistribution
from .floats import negligible_mass

__all__ = ["DiscreteBayesNet", "BayesNetError"]

Assignment = Dict[str, float]


class BayesNetError(ValueError):
    """Raised on malformed network definitions or queries."""


@dataclass(frozen=True)
class _Node:
    name: str
    values: Tuple[float, ...]
    parents: Tuple[str, ...]
    # cpt maps a tuple of parent values to the child's probability vector.
    cpt: Mapping[Tuple[float, ...], Tuple[float, ...]]


class DiscreteBayesNet:
    """A Bayesian network over named real-valued discrete variables.

    Nodes are added parents-first; each node carries a conditional
    probability table keyed by parent value combinations.

    Example — load couples memory and a selectivity::

        net = DiscreteBayesNet()
        net.add_node("load", [0.0, 1.0], probs=[0.6, 0.4])
        net.add_node(
            "M", [2000.0, 500.0], parents=["load"],
            cpt={(0.0,): [0.9, 0.1], (1.0,): [0.2, 0.8]},
        )
    """

    def __init__(self):
        self._nodes: Dict[str, _Node] = {}
        self._order: List[str] = []
        self._joint_cache: Optional[List[Tuple[Assignment, float]]] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_node(
        self,
        name: str,
        values: Sequence[float],
        parents: Sequence[str] = (),
        probs: Optional[Sequence[float]] = None,
        cpt: Optional[Mapping[Tuple[float, ...], Sequence[float]]] = None,
    ) -> "DiscreteBayesNet":
        """Add a variable.  Root nodes take ``probs``; others take ``cpt``.

        Returns ``self`` so definitions chain.
        """
        if name in self._nodes:
            raise BayesNetError(f"node {name!r} already defined")
        vals = tuple(float(v) for v in values)
        if len(set(vals)) != len(vals) or not vals:
            raise BayesNetError(f"node {name!r} needs distinct, non-empty values")
        parents = tuple(parents)
        for p in parents:
            if p not in self._nodes:
                raise BayesNetError(
                    f"parent {p!r} of {name!r} must be added first"
                )
        if parents:
            if cpt is None:
                raise BayesNetError(f"node {name!r} has parents and needs a cpt")
            table: Dict[Tuple[float, ...], Tuple[float, ...]] = {}
            expected_keys = list(
                itertools.product(*(self._nodes[p].values for p in parents))
            )
            for key in expected_keys:
                fkey = tuple(float(k) for k in key)
                if fkey not in {tuple(float(x) for x in k) for k in cpt}:
                    raise BayesNetError(
                        f"cpt of {name!r} missing parent combination {fkey}"
                    )
            for key, row in cpt.items():
                fkey = tuple(float(k) for k in key)
                vec = self._check_probs(name, row, len(vals))
                table[fkey] = vec
            self._nodes[name] = _Node(name, vals, parents, table)
        else:
            if probs is None:
                raise BayesNetError(f"root node {name!r} needs probs")
            vec = self._check_probs(name, probs, len(vals))
            self._nodes[name] = _Node(name, vals, (), {(): vec})
        self._order.append(name)
        self._joint_cache = None
        return self

    @staticmethod
    def _check_probs(name: str, row: Sequence[float], n: int) -> Tuple[float, ...]:
        vec = tuple(float(p) for p in row)
        if len(vec) != n:
            raise BayesNetError(f"probability row of {name!r} has wrong arity")
        if any(p < 0 for p in vec) or abs(sum(vec) - 1.0) > 1e-9:
            raise BayesNetError(
                f"probability row of {name!r} must be non-negative and sum to 1"
            )
        return vec

    # ------------------------------------------------------------------
    # Inference (exact, by enumeration)
    # ------------------------------------------------------------------

    @property
    def names(self) -> List[str]:
        """Variable names in insertion (topological) order."""
        return list(self._order)

    def joint(self) -> List[Tuple[Assignment, float]]:
        """All full assignments with non-zero probability."""
        if self._joint_cache is None:
            out: List[Tuple[Assignment, float]] = []
            self._enumerate({}, 1.0, 0, out)
            self._joint_cache = out
        return self._joint_cache

    def _enumerate(self, partial: Assignment, prob: float, depth: int, out):
        if negligible_mass(prob):
            return
        if depth == len(self._order):
            out.append((dict(partial), prob))
            return
        node = self._nodes[self._order[depth]]
        key = tuple(partial[p] for p in node.parents)
        row = node.cpt[key]
        for value, p in zip(node.values, row):
            if p == 0.0:
                continue
            partial[node.name] = value
            self._enumerate(partial, prob * p, depth + 1, out)
            del partial[node.name]

    def marginal(self, name: str) -> DiscreteDistribution:
        """Marginal distribution of one variable."""
        if name not in self._nodes:
            raise BayesNetError(f"no node {name!r}")
        acc: Dict[float, float] = {}
        for assignment, prob in self.joint():
            v = assignment[name]
            acc[v] = acc.get(v, 0.0) + prob
        return DiscreteDistribution(list(acc), list(acc.values()))

    def conditional(self, name: str, given: Assignment) -> DiscreteDistribution:
        """Distribution of ``name`` given observed values of other nodes."""
        if name not in self._nodes:
            raise BayesNetError(f"no node {name!r}")
        acc: Dict[float, float] = {}
        total = 0.0
        for assignment, prob in self.joint():
            if any(assignment.get(k) != float(v) for k, v in given.items()):
                continue
            acc[assignment[name]] = acc.get(assignment[name], 0.0) + prob
            total += prob
        if total <= 0.0:
            raise BayesNetError(f"evidence {given!r} has zero probability")
        return DiscreteDistribution(list(acc), [p / total for p in acc.values()])

    def condition(self, given: Assignment) -> "DiscreteBayesNet":
        """A new net representing the joint conditioned on the evidence.

        Implemented by re-expressing the conditioned joint as a single
        flat factor (one synthetic root per variable would lose
        dependence); for the coster's purposes only the joint matters,
        so the conditioned net exposes the same API via a frozen joint.
        """
        kept = []
        total = 0.0
        for assignment, prob in self.joint():
            if any(assignment.get(k) != float(v) for k, v in given.items()):
                continue
            kept.append((dict(assignment), prob))
            total += prob
        if total <= 0.0:
            raise BayesNetError(f"evidence {given!r} has zero probability")
        clone = DiscreteBayesNet()
        clone._nodes = dict(self._nodes)
        clone._order = list(self._order)
        clone._joint_cache = [(a, p / total) for a, p in kept]
        return clone

    def expectation(self, fn: Callable[[Assignment], float]) -> float:
        """``E[fn(X)]`` over the (possibly conditioned) joint."""
        return sum(prob * fn(assignment) for assignment, prob in self.joint())

    def sample(self, rng: np.random.Generator) -> Assignment:
        """Draw one full assignment from the joint."""
        assignments, probs = zip(*self.joint())
        idx = rng.choice(len(assignments), p=np.array(probs) / sum(probs))
        return dict(assignments[int(idx)])

    def mutual_dependence(self, a: str, b: str) -> float:
        """Total-variation gap between the joint of (a, b) and the product
        of marginals — 0 iff the two variables are independent.
        """
        joint_ab: Dict[Tuple[float, float], float] = {}
        for assignment, prob in self.joint():
            key = (assignment[a], assignment[b])
            joint_ab[key] = joint_ab.get(key, 0.0) + prob
        ma, mb = self.marginal(a), self.marginal(b)
        gap = 0.0
        for (va, vb), p in joint_ab.items():
            gap += abs(p - ma.prob_of(va) * mb.prob_of(vb))
        return gap
