"""Discrete Bayesian networks over optimizer parameters (Section 4).

The paper assumes parameters are independent, noting: "If there are some
dependencies between the variables, but not too many, we can still
describe the distribution succinctly using a Bayesian network [Pea88].
We believe that the techniques that we present here will also be
applicable to that case."  This module makes that belief concrete: a
small discrete Bayes net (:class:`DiscreteBayesNet`) describes the joint
distribution of memory, selectivities and sizes — e.g. a latent *system
load* variable that simultaneously depresses available memory and shifts
selectivities — and :class:`~repro.optimizer.costers` gains a
``BayesNetCoster`` (see :mod:`repro.optimizer.dependent`) that computes
exact expected costs under the dependent joint.

Networks are meant to be small (a handful of nodes, a few values each);
inference is by exact joint enumeration.  The enumeration itself is an
array program: :meth:`DiscreteBayesNet.joint_arrays` expands the joint
level by level (one vectorized multiply per node) in the exact order and
with the exact per-assignment multiply sequence the old recursive walk
used, so probabilities are bit-identical; ``joint()`` and
``expectation`` are thin views over those arrays, and
:meth:`DiscreteBayesNet.expectation_many` batches whole matrices of
per-assignment values into one cumulative-sum reduction.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from .distributions import DiscreteDistribution
from .floats import negligible_mass

__all__ = ["DiscreteBayesNet", "BayesNetError"]

Assignment = Dict[str, float]


class BayesNetError(ValueError):
    """Raised on malformed network definitions or queries."""


@dataclass(frozen=True)
class _Node:
    name: str
    values: Tuple[float, ...]
    parents: Tuple[str, ...]
    # cpt maps a tuple of parent values to the child's probability vector.
    cpt: Mapping[Tuple[float, ...], Tuple[float, ...]]


class DiscreteBayesNet:
    """A Bayesian network over named real-valued discrete variables.

    Nodes are added parents-first; each node carries a conditional
    probability table keyed by parent value combinations.

    Example — load couples memory and a selectivity::

        net = DiscreteBayesNet()
        net.add_node("load", [0.0, 1.0], probs=[0.6, 0.4])
        net.add_node(
            "M", [2000.0, 500.0], parents=["load"],
            cpt={(0.0,): [0.9, 0.1], (1.0,): [0.2, 0.8]},
        )
    """

    def __init__(self):
        self._nodes: Dict[str, _Node] = {}
        self._order: List[str] = []
        self._joint_cache: Optional[List[Tuple[Assignment, float]]] = None
        # (values (k, n_nodes), probs (k,)) — the array twin of the joint.
        self._arrays_cache: Optional[Tuple[np.ndarray, np.ndarray]] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_node(
        self,
        name: str,
        values: Sequence[float],
        parents: Sequence[str] = (),
        probs: Optional[Sequence[float]] = None,
        cpt: Optional[Mapping[Tuple[float, ...], Sequence[float]]] = None,
    ) -> "DiscreteBayesNet":
        """Add a variable.  Root nodes take ``probs``; others take ``cpt``.

        Returns ``self`` so definitions chain.
        """
        if name in self._nodes:
            raise BayesNetError(f"node {name!r} already defined")
        vals = tuple(float(v) for v in values)
        if len(set(vals)) != len(vals) or not vals:
            raise BayesNetError(f"node {name!r} needs distinct, non-empty values")
        parents = tuple(parents)
        for p in parents:
            if p not in self._nodes:
                raise BayesNetError(
                    f"parent {p!r} of {name!r} must be added first"
                )
        if parents:
            if cpt is None:
                raise BayesNetError(f"node {name!r} has parents and needs a cpt")
            table: Dict[Tuple[float, ...], Tuple[float, ...]] = {}
            expected_keys = list(
                itertools.product(*(self._nodes[p].values for p in parents))
            )
            for key in expected_keys:
                fkey = tuple(float(k) for k in key)
                if fkey not in {tuple(float(x) for x in k) for k in cpt}:
                    raise BayesNetError(
                        f"cpt of {name!r} missing parent combination {fkey}"
                    )
            for key, row in cpt.items():
                fkey = tuple(float(k) for k in key)
                vec = self._check_probs(name, row, len(vals))
                table[fkey] = vec
            self._nodes[name] = _Node(name, vals, parents, table)
        else:
            if probs is None:
                raise BayesNetError(f"root node {name!r} needs probs")
            vec = self._check_probs(name, probs, len(vals))
            self._nodes[name] = _Node(name, vals, (), {(): vec})
        self._order.append(name)
        self._joint_cache = None
        self._arrays_cache = None
        return self

    @staticmethod
    def _check_probs(name: str, row: Sequence[float], n: int) -> Tuple[float, ...]:
        vec = tuple(float(p) for p in row)
        if len(vec) != n:
            raise BayesNetError(f"probability row of {name!r} has wrong arity")
        if any(p < 0 for p in vec) or abs(sum(vec) - 1.0) > 1e-9:
            raise BayesNetError(
                f"probability row of {name!r} must be non-negative and sum to 1"
            )
        return vec

    # ------------------------------------------------------------------
    # Inference (exact, by enumeration)
    # ------------------------------------------------------------------

    @property
    def names(self) -> List[str]:
        """Variable names in insertion (topological) order."""
        return list(self._order)

    def joint(self) -> List[Tuple[Assignment, float]]:
        """All full assignments with non-zero probability.

        A dict-of-floats view over :meth:`joint_arrays` — same rows,
        same order, same probabilities.
        """
        if self._joint_cache is None:
            values, probs = self.joint_arrays()
            self._joint_cache = [
                (
                    {name: float(v) for name, v in zip(self._order, row)},
                    float(p),
                )
                for row, p in zip(values, probs)
            ]
        return self._joint_cache

    def joint_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """The joint as arrays: ``(values (k, n_nodes), probs (k,))``.

        Column ``j`` of ``values`` holds variable ``self.names[j]``; row
        order is the depth-first order the recursive enumeration used
        (node values in declaration order at every level).  The
        expansion is iterative and vectorized — one cpt-row gather and
        one elementwise multiply per node — but performs the *same*
        left-to-right multiply sequence per assignment as the scalar
        walk, so every probability is bit-identical.  Pruning mirrors
        the walk too: zero cpt entries are dropped at the level that
        introduces them and partials whose running mass is negligible
        (``negligible_mass``) are dropped on entry to the next level,
        including the final full-assignment check.

        A conditioned clone (whose joint was frozen by
        :meth:`condition`) derives its arrays from the frozen joint
        rather than re-expanding.
        """
        if self._arrays_cache is None:
            if self._joint_cache is not None:
                self._arrays_cache = self._arrays_from_joint()
            else:
                self._arrays_cache = self._expand_arrays()
        return self._arrays_cache

    def _arrays_from_joint(self) -> Tuple[np.ndarray, np.ndarray]:
        rows = self._joint_cache
        if not rows:
            return np.empty((0, len(self._order))), np.empty(0)
        values = np.array(
            [[a[name] for name in self._order] for a, _ in rows], dtype=float
        )
        probs = np.array([p for _, p in rows], dtype=float)
        return values, probs

    def _expand_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        if not self._order:
            return np.empty((1, 0)), np.ones(1)
        pos = {name: j for j, name in enumerate(self._order)}
        probs = np.ones(1)
        idx_cols: List[np.ndarray] = []  # per-node state-index columns
        for name in self._order:
            # Entry prune: the recursive walk rejects a partial whose
            # running mass is negligible before expanding it further.
            keep = ~negligible_mass(probs)
            if not keep.all():
                probs = probs[keep]
                idx_cols = [col[keep] for col in idx_cols]
            node = self._nodes[name]
            n_vals = len(node.values)
            if node.parents:
                sizes = [len(self._nodes[p].values) for p in node.parents]
                combos = itertools.product(
                    *(self._nodes[p].values for p in node.parents)
                )
                cpt_mat = np.array([node.cpt[c] for c in combos])
                strides = [1] * len(sizes)
                for i in range(len(sizes) - 2, -1, -1):
                    strides[i] = strides[i + 1] * sizes[i + 1]
                combo_idx = np.zeros(probs.size, dtype=int)
                for parent, stride in zip(node.parents, strides):
                    combo_idx += idx_cols[pos[parent]] * stride
                rows = cpt_mat[combo_idx]
            else:
                rows = np.tile(np.asarray(node.cpt[()]), (probs.size, 1))
            # C-order ravel == depth-first child order of the old walk.
            new_probs = (probs[:, None] * rows).ravel()
            idx_cols = [np.repeat(col, n_vals) for col in idx_cols]
            idx_cols.append(np.tile(np.arange(n_vals), probs.size))
            # Zero-skip: the walk never recursed into a zero cpt entry.
            keep = rows.ravel() != 0.0
            probs = new_probs[keep]
            idx_cols = [col[keep] for col in idx_cols]
        # Final entry check (depth == n_nodes in the recursive walk).
        keep = ~negligible_mass(probs)
        probs = probs[keep]
        values = np.column_stack(
            [
                np.asarray(self._nodes[name].values)[col[keep]]
                for name, col in zip(self._order, idx_cols)
            ]
        )
        return values, probs

    def marginal(self, name: str) -> DiscreteDistribution:
        """Marginal distribution of one variable."""
        if name not in self._nodes:
            raise BayesNetError(f"no node {name!r}")
        acc: Dict[float, float] = {}
        for assignment, prob in self.joint():
            v = assignment[name]
            acc[v] = acc.get(v, 0.0) + prob
        return DiscreteDistribution(list(acc), list(acc.values()))

    def conditional(self, name: str, given: Assignment) -> DiscreteDistribution:
        """Distribution of ``name`` given observed values of other nodes."""
        if name not in self._nodes:
            raise BayesNetError(f"no node {name!r}")
        acc: Dict[float, float] = {}
        total = 0.0
        for assignment, prob in self.joint():
            if any(assignment.get(k) != float(v) for k, v in given.items()):
                continue
            acc[assignment[name]] = acc.get(assignment[name], 0.0) + prob
            total += prob
        if total <= 0.0:
            raise BayesNetError(f"evidence {given!r} has zero probability")
        return DiscreteDistribution(list(acc), [p / total for p in acc.values()])

    def condition(self, given: Assignment) -> "DiscreteBayesNet":
        """A new net representing the joint conditioned on the evidence.

        Implemented by re-expressing the conditioned joint as a single
        flat factor (one synthetic root per variable would lose
        dependence); for the coster's purposes only the joint matters,
        so the conditioned net exposes the same API via a frozen joint.
        """
        kept = []
        total = 0.0
        for assignment, prob in self.joint():
            if any(assignment.get(k) != float(v) for k, v in given.items()):
                continue
            kept.append((dict(assignment), prob))
            total += prob
        if total <= 0.0:
            raise BayesNetError(f"evidence {given!r} has zero probability")
        clone = DiscreteBayesNet()
        clone._nodes = dict(self._nodes)
        clone._order = list(self._order)
        clone._joint_cache = [(a, p / total) for a, p in kept]
        return clone

    def expectation(self, fn: Callable[[Assignment], float]) -> float:
        """``E[fn(X)]`` over the (possibly conditioned) joint."""
        return sum(prob * fn(assignment) for assignment, prob in self.joint())

    def expectation_many(self, values: np.ndarray) -> np.ndarray:
        """Batched expectations over per-assignment value rows.

        ``values`` has shape ``(m, k)`` (or ``(k,)`` for a single
        expectation) with column ``j`` aligned to row ``j`` of
        :meth:`joint_arrays`.  The reduction is a cumulative sum along
        the assignment axis — the same left-to-right accumulation as
        :meth:`expectation`'s generator ``sum`` — so each result is
        bit-identical to the scalar loop over the same per-assignment
        values.
        """
        _, probs = self.joint_arrays()
        arr = np.asarray(values, dtype=float)
        squeeze = arr.ndim == 1
        if squeeze:
            arr = arr[None, :]
        if arr.shape[1] != probs.size:
            raise BayesNetError(
                f"expected {probs.size} per-assignment values, "
                f"got {arr.shape[1]}"
            )
        if probs.size == 0:
            out = np.zeros(arr.shape[0])
        else:
            out = np.cumsum(arr * probs[None, :], axis=1)[:, -1]
        return out[0] if squeeze else out

    def sample(self, rng: np.random.Generator) -> Assignment:
        """Draw one full assignment from the joint."""
        assignments, probs = zip(*self.joint())
        idx = rng.choice(len(assignments), p=np.array(probs) / sum(probs))
        return dict(assignments[int(idx)])

    def mutual_dependence(self, a: str, b: str) -> float:
        """Total-variation gap between the joint of (a, b) and the product
        of marginals — 0 iff the two variables are independent.
        """
        joint_ab: Dict[Tuple[float, float], float] = {}
        for assignment, prob in self.joint():
            key = (assignment[a], assignment[b])
            joint_ab[key] = joint_ab.get(key, 0.0) + prob
        ma, mb = self.marginal(a), self.marginal(b)
        gap = 0.0
        for (va, vb), p in joint_ab.items():
            gap += abs(p - ma.prob_of(va) * mb.prob_of(vb))
        return gap
