"""Core LEC machinery: distributions, algorithms A-D, bucketing, risk."""

from .algorithm_a import optimize_algorithm_a
from .algorithm_b import optimize_algorithm_b
from .algorithm_c import optimize_algorithm_c
from .algorithm_d import optimize_algorithm_d, plan_expected_cost_multiparam
from .bayesnet import BayesNetError, DiscreteBayesNet
from .context import CacheStats, OptimizationContext, query_fingerprint
from .bucketing import (
    collect_memory_breakpoints,
    equal_depth_buckets,
    equal_width_buckets,
    level_set_buckets,
    level_set_expectation,
    refine_adaptive,
)
from .distributions import (
    DiscreteDistribution,
    discretized_lognormal,
    discretized_normal,
    from_samples,
    independent_product,
    point_mass,
    two_point,
    uniform_over,
)
from .expected_cost import (
    expected_grace_hash_cost,
    expected_join_cost_fast,
    expected_join_cost_naive,
    expected_nested_loop_cost,
    expected_sort_merge_cost,
)
from .lsc import lsc_at_mean, lsc_at_mode, optimize_lsc
from .markov import MarkovParameter, random_walk_chain, sticky_chain
from .risk import (
    ExpectedCost,
    ExponentialUtility,
    MeanVariance,
    QuantileCost,
    UtilityObjective,
    WorstCase,
    choose_by_utility,
    cost_is_memory_invariant,
    plan_cost_distribution,
)

__all__ = [
    "OptimizationContext",
    "CacheStats",
    "query_fingerprint",
    "DiscreteDistribution",
    "point_mass",
    "two_point",
    "uniform_over",
    "from_samples",
    "discretized_lognormal",
    "discretized_normal",
    "independent_product",
    "DiscreteBayesNet",
    "BayesNetError",
    "MarkovParameter",
    "random_walk_chain",
    "sticky_chain",
    "optimize_lsc",
    "lsc_at_mean",
    "lsc_at_mode",
    "optimize_algorithm_a",
    "optimize_algorithm_b",
    "optimize_algorithm_c",
    "optimize_algorithm_d",
    "plan_expected_cost_multiparam",
    "expected_join_cost_naive",
    "expected_join_cost_fast",
    "expected_sort_merge_cost",
    "expected_nested_loop_cost",
    "expected_grace_hash_cost",
    "equal_width_buckets",
    "equal_depth_buckets",
    "level_set_buckets",
    "level_set_expectation",
    "collect_memory_breakpoints",
    "refine_adaptive",
    "UtilityObjective",
    "ExpectedCost",
    "MeanVariance",
    "ExponentialUtility",
    "QuantileCost",
    "WorstCase",
    "choose_by_utility",
    "plan_cost_distribution",
    "cost_is_memory_invariant",
]
