"""Algorithm C: the exact LEC dynamic program (Sections 3.4-3.5).

Instead of generating candidates per parameter setting and re-scoring
them, Algorithm C merges candidate generation and costing: every DP step
is costed by its *expected* cost directly, and since expectation
distributes over the sum of node costs, the usual optimal-substructure
argument goes through — the result is the exact LEC left-deep plan
(Theorem 3.3).

Dynamic parameters (Section 3.5) need no new algorithm: passing a
:class:`~repro.core.markov.MarkovParameter` swaps the static memory
distribution for per-phase marginals, and the very same DP returns the
exact LEC plan over the random memory *sequence* (Theorem 3.4).
"""

from __future__ import annotations

from typing import Optional, Union

from ..core.markov import MarkovParameter
from ..costmodel.model import CostModel
from ..optimizer.costers import ExpectedCoster, MarkovCoster
from ..optimizer.result import OptimizationResult
from ..optimizer.systemr import SystemRDP
from ..plans.query import JoinQuery
from .context import OptimizationContext
from .distributions import DiscreteDistribution

__all__ = ["optimize_algorithm_c"]


def optimize_algorithm_c(
    query: JoinQuery,
    memory: Union[DiscreteDistribution, MarkovParameter],
    cost_model: Optional[CostModel] = None,
    plan_space: str = "left-deep",
    allow_cross_products: bool = False,
    top_k: int = 1,
    context: Optional[OptimizationContext] = None,
    level_batching: Optional[bool] = None,
    parallelism=None,
) -> OptimizationResult:
    """Compute the LEC plan by expected-cost dynamic programming.

    Parameters
    ----------
    memory:
        A :class:`~repro.core.distributions.DiscreteDistribution` for the
        static case, or a :class:`~repro.core.markov.MarkovParameter` for
        memory that changes between join phases.
    plan_space:
        ``"left-deep"`` for the paper's space.  ``"bushy"`` is supported
        for static memory only (bushy trees have no canonical phase
        order).
    level_batching, parallelism:
        Forwarded to :class:`~repro.optimizer.systemr.SystemRDP`;
        bit-invisible in the chosen plan and objective.
    """
    if isinstance(memory, MarkovParameter):
        coster: Union[ExpectedCoster, MarkovCoster] = MarkovCoster(
            memory, cost_model=cost_model
        )
    elif isinstance(memory, DiscreteDistribution):
        coster = ExpectedCoster(memory, cost_model=cost_model)
    else:
        raise TypeError(
            "memory must be a DiscreteDistribution or MarkovParameter, "
            f"got {type(memory).__name__}"
        )
    engine = SystemRDP(
        coster,
        plan_space=plan_space,
        allow_cross_products=allow_cross_products,
        top_k=top_k,
        context=context,
        level_batching=level_batching,
        parallelism=parallelism,
    )
    return engine.optimize(query)
