"""Algorithm A: the standard optimizer as a black box (Section 3.2).

For each memory bucket ``m_i`` run an unmodified LSC optimizer assuming
``m_i`` is the real memory; this yields (up to) ``b`` candidate plans.
Then score every candidate by its true expected cost under the memory
distribution and keep the cheapest.

Guarantees: the result is never worse (in expectation) than the classical
LSC plan *provided the classical point (mean/mode) is among the buckets* —
callers can ensure this with ``include_mean=True`` (the default, matching
the paper's "without loss of generality" remark).  It may still miss the
true LEC plan: a plan optimal for no single bucket can win on average.
"""

from __future__ import annotations

from typing import List, Optional

from ..costmodel.model import CostModel
from ..optimizer.costers import PointCoster
from ..optimizer.result import OptimizationResult, OptimizerStats, PlanChoice
from ..optimizer.systemr import SystemRDP
from ..plans.nodes import Plan
from ..plans.query import JoinQuery
from .context import OptimizationContext
from .distributions import DiscreteDistribution

__all__ = ["optimize_algorithm_a"]


def optimize_algorithm_a(
    query: JoinQuery,
    memory: DiscreteDistribution,
    cost_model: Optional[CostModel] = None,
    plan_space: str = "left-deep",
    allow_cross_products: bool = False,
    include_mean: bool = True,
    context: Optional[OptimizationContext] = None,
    level_batching: Optional[bool] = None,
    parallelism=None,
) -> OptimizationResult:
    """Run Algorithm A and return the candidate of least expected cost.

    The returned ``candidates`` list holds every distinct per-bucket
    winner with its expected cost (best first); ``stats`` accumulates the
    counters of all ``b`` black-box invocations plus the final costing
    pass.  A shared ``context`` lets the ``b`` black-box invocations (and
    any sibling optimizers) reuse memoized sizes and step costs;
    ``level_batching``/``parallelism`` forward to each invocation's
    engine and never change the result.
    """
    cm = cost_model if cost_model is not None else CostModel()
    if context is None:
        context = OptimizationContext(query, cost_model=cm)
    probe_points = list(memory.support())
    if include_mean and memory.mean() not in probe_points:
        probe_points.append(memory.mean())

    stats = OptimizerStats(invocations=0)
    seen: dict = {}
    for m in probe_points:
        engine = SystemRDP(
            PointCoster(m, cost_model=cm),
            plan_space=plan_space,
            allow_cross_products=allow_cross_products,
            context=context,
            level_batching=level_batching,
            parallelism=parallelism,
        )
        result = engine.optimize(query)
        stats = stats.merged_with(result.stats)
        plan = result.plan
        seen.setdefault(plan.signature(), plan)

    evals_before = cm.eval_count
    choices: List[PlanChoice] = []
    for plan in seen.values():
        expected = cm.plan_expected_cost(plan, query, memory)
        choices.append(PlanChoice(plan=plan, objective=expected))
    choices.sort(key=lambda c: c.objective)
    stats.formula_evaluations += cm.eval_count - evals_before
    return OptimizationResult(best=choices[0], candidates=choices, stats=stats)
