"""The shared optimization context: one memo layer for a whole query.

Every costing objective in this library re-derives the same intermediate
state: subset sizes and page-count distributions per relation subset,
products/rebucketings of :class:`~repro.core.distributions.
DiscreteDistribution` objects, and the survival tables behind the
linear-time expected-cost paths.  Historically each coster rebuilt these
privately on every :meth:`~repro.optimizer.costers.Coster.bind`, so
running several optimizers over one query (Algorithms A-D, parametric
region sweeps, the experiment harness) repeated identical work many
times over.

:class:`OptimizationContext` is the seam that removes that duplication.
It is created once per (catalog, cost-model, query) triple and threaded
through every layer — the costers, :class:`~repro.optimizer.systemr.
SystemRDP`, Algorithms A-D, the deferred-decision strategies, and the
:func:`repro.optimize` facade — memoizing:

* **subset sizes** (``subset_size``) and **subset page-count
  distributions** (``subset_size_distribution``), keyed by ``frozenset``
  of relation names;
* **distribution binary ops** — independent products, convolutions and
  rebucketings — keyed by the operands' value-based hashes, so two
  structurally equal distributions share one result;
* **survival tables** (:class:`~repro.core.expected_cost._SurvivalTable`)
  per memory distribution, amortised across all dag nodes and all
  optimizer invocations;
* **step costs** (join steps, materialisation writes, enforcer sorts)
  via a generic namespaced memo that costers key by their full parameter
  identity, so repeated optimizations of the same query skip straight to
  the cached expectations.

A context is *only* valid for the exact statistics it was built from:
:func:`query_fingerprint` captures every number the optimizer can read
(sizes, distributions, selectivities, orders), and :meth:`matches`
refuses a query whose fingerprint differs — the facade uses this to
build a fresh context whenever catalog statistics change.

Cache effectiveness is observable: :meth:`stats` reports per-cache
hit/miss counters, the number the context-cache micro-benchmark and the
E4/E7-style overhead accounting rest on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..plans.properties import JoinMethod
from ..costmodel.estimates import (
    SizeEstimate,
    subset_size,
    subset_size_bounds,
    subset_size_distribution,
)
from ..costmodel.model import CostModel
from .distributions import DiscreteDistribution
from .expected_cost import (
    _SurvivalTable,
    expected_join_costs_batched,
    expected_join_costs_batched_parallel,
)
from .parallel import WorkerPool

__all__ = ["CacheStats", "OptimizationContext", "query_fingerprint"]


@dataclass
class CacheStats:
    """Hit/miss counters for one cache inside the context."""

    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups against this cache."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from cache (0.0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view for reporting."""
        return {"hits": self.hits, "misses": self.misses, "hit_rate": self.hit_rate}


def query_fingerprint(query) -> Tuple:
    """A hashable digest of every statistic the optimizer reads.

    Two queries with equal fingerprints are interchangeable for costing
    purposes; a mutated catalog (different sizes, selectivities,
    distributions) necessarily changes the fingerprint, which is how the
    facade knows to discard a stale context.
    """
    relations = tuple(
        (
            r.name,
            float(r.pages),
            None if r.rows is None else float(r.rows),
            r.pages_dist,
            float(r.filter_selectivity),
            r.index,
        )
        for r in query.relations
    )
    predicates = tuple(
        (
            p.left,
            p.right,
            float(p.selectivity),
            p.label,
            p.selectivity_dist,
            None
            if p.result_pages_override is None
            else float(p.result_pages_override),
            p.equiv_class,
        )
        for p in query.predicates
    )
    base = (
        relations,
        predicates,
        query.required_order,
        query.rows_per_page,
        float(getattr(query, "projection_ratio", 1.0)),
    )
    arms = getattr(query, "arms", None)
    if arms is not None:  # SPJU block: arm structure changes plan shapes
        arm_digest = tuple(
            (
                tuple(r.name for r in arm.relations),
                float(arm.projection_ratio),
            )
            for arm in arms
        )
        return base + ("union", arm_digest, bool(query.distinct))
    return base


class OptimizationContext:
    """Shared memoization for all optimizer layers working on one query.

    Parameters
    ----------
    query:
        The join query this context serves.  All caches are keyed under
        the assumption that the query's statistics never change; build a
        new context when they do (see :meth:`matches`).
    cost_model:
        The cost model the owning optimizers evaluate formulas with.
        The context stores it for identification only — cached values
        depend on the (pure) formula functions, not the instance.
    default_max_buckets:
        Rebucketing cap used when :meth:`size_distribution` is called
        without an explicit ``max_buckets``.
    """

    def __init__(
        self,
        query,
        cost_model: Optional[CostModel] = None,
        default_max_buckets: int = 16,
    ):
        self.query = query
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.default_max_buckets = default_max_buckets
        self.fingerprint: Tuple = query_fingerprint(query)

        self._sizes: Dict[FrozenSet[str], SizeEstimate] = {}
        self._bounds: Dict[FrozenSet[str], Tuple[float, float]] = {}
        self._size_dists: Dict[Tuple[FrozenSet[str], int], DiscreteDistribution] = {}
        self._dist_ops: Dict[Tuple, DiscreteDistribution] = {}
        self._survival: Dict[DiscreteDistribution, _SurvivalTable] = {}
        self._cost_memo: Dict[Hashable, float] = {}
        self._stats: Dict[str, CacheStats] = {
            "subset_sizes": CacheStats(),
            "subset_bounds": CacheStats(),
            "size_distributions": CacheStats(),
            "dist_ops": CacheStats(),
            "survival_tables": CacheStats(),
            "step_costs": CacheStats(),
            "batched_joins": CacheStats(),
        }

    # ------------------------------------------------------------------
    # Validity
    # ------------------------------------------------------------------

    def matches(self, query) -> bool:
        """True when ``query`` carries the statistics this context serves.

        Identity is the fast path; otherwise the fingerprints must agree
        — a query rebuilt from mutated catalog statistics fails this
        check, forcing callers to construct a fresh context rather than
        silently reusing stale sizes and distributions.
        """
        if query is self.query:
            return True
        return query_fingerprint(query) == self.fingerprint

    # ------------------------------------------------------------------
    # Layer 1: subset sizes
    # ------------------------------------------------------------------

    def subset_size(self, rels: Iterable[str]) -> SizeEstimate:
        """Memoized point size estimate for the join over ``rels``."""
        key = frozenset(rels)
        stats = self._stats["subset_sizes"]
        cached = self._sizes.get(key)
        if cached is not None:
            stats.hits += 1
            return cached
        stats.misses += 1
        est = subset_size(key, self.query)
        self._sizes[key] = est
        return est

    def subset_pages(self, rels: Iterable[str]) -> float:
        """Memoized point page count for the join over ``rels``."""
        return self.subset_size(rels).pages

    def subset_bounds(self, rels: Iterable[str]) -> Tuple[float, float]:
        """Memoized analytic ``(lo, hi)`` page bounds for ``rels``.

        The Chen & Schneider-style intermediate-size bounds (see
        :func:`repro.costmodel.estimates.subset_size_bounds`), used to
        clamp propagated distributions and to prune the bushy DP.
        """
        key = frozenset(rels)
        stats = self._stats["subset_bounds"]
        cached = self._bounds.get(key)
        if cached is not None:
            stats.hits += 1
            return cached
        stats.misses += 1
        bounds = subset_size_bounds(key, self.query)
        self._bounds[key] = bounds
        return bounds

    def size_distribution(
        self, rels: Iterable[str], max_buckets: Optional[int] = None
    ) -> DiscreteDistribution:
        """Memoized page-count distribution for the join over ``rels``.

        The underlying propagation routes its distribution products and
        rebucketings through this context's op cache, so structurally
        shared subexpressions (the same relation pair inside two larger
        subsets, say) are computed once.
        """
        buckets = max_buckets if max_buckets is not None else self.default_max_buckets
        key = (frozenset(rels), buckets)
        stats = self._stats["size_distributions"]
        cached = self._size_dists.get(key)
        if cached is not None:
            stats.hits += 1
            return cached
        stats.misses += 1
        dist = subset_size_distribution(
            key[0], self.query, max_buckets=buckets, ops=self
        )
        self._size_dists[key] = dist
        return dist

    # ------------------------------------------------------------------
    # Layer 2: distribution binary ops (value-hash keyed)
    # ------------------------------------------------------------------
    # These three methods satisfy the ``ops`` protocol of
    # :func:`repro.costmodel.estimates.subset_size_distribution`.

    def product(
        self, a: DiscreteDistribution, b: DiscreteDistribution
    ) -> DiscreteDistribution:
        """Cached distribution of ``X · Y`` for independent ``X, Y``."""
        return self._dist_op(("mul", a, b), lambda: a.multiply(b))

    def convolve(
        self, a: DiscreteDistribution, b: DiscreteDistribution
    ) -> DiscreteDistribution:
        """Cached distribution of ``X + Y`` for independent ``X, Y``."""
        return self._dist_op(("add", a, b), lambda: a.convolve(b))

    def rebucket(
        self,
        dist: DiscreteDistribution,
        n_buckets: int,
        strategy: str = "equidepth",
    ) -> DiscreteDistribution:
        """Cached mean-preserving coarsening of ``dist``."""
        if dist.n_buckets <= n_buckets:
            return dist
        return self._dist_op(
            ("rebucket", dist, n_buckets, strategy),
            lambda: dist.rebucket(n_buckets, strategy=strategy),
        )

    def _dist_op(
        self, key: Tuple, compute: Callable[[], DiscreteDistribution]
    ) -> DiscreteDistribution:
        stats = self._stats["dist_ops"]
        cached = self._dist_ops.get(key)
        if cached is not None:
            stats.hits += 1
            return cached
        stats.misses += 1
        result = compute()
        self._dist_ops[key] = result
        return result

    # ------------------------------------------------------------------
    # Layer 3: fast-path structures
    # ------------------------------------------------------------------

    def survival_table(self, memory: DiscreteDistribution) -> _SurvivalTable:
        """Memoized survival table for a memory distribution.

        One table serves every dag node and every optimizer invocation
        that shares this context — the amortisation the paper assumes
        when counting the fast paths' preprocessing as O(b_M) *total*.
        """
        stats = self._stats["survival_tables"]
        cached = self._survival.get(memory)
        if cached is not None:
            stats.hits += 1
            return cached
        stats.misses += 1
        table = _SurvivalTable(memory)
        self._survival[memory] = table
        return table

    # ------------------------------------------------------------------
    # Layer 4: step-cost memo (costers key by their full identity)
    # ------------------------------------------------------------------

    def step_cost(self, key: Hashable, compute: Callable[[], float]) -> float:
        """Memoized scalar step cost under a caller-supplied key.

        Costers build keys from their complete parameter identity
        (objective kind, memory value/distribution, bucket caps, method,
        operand subsets, order flags), so two invocations can share a
        value only when every ingredient of the expectation is equal.
        """
        stats = self._stats["step_costs"]
        cached = self._cost_memo.get(key)
        if cached is not None:
            stats.hits += 1
            return cached
        stats.misses += 1
        value = compute()
        self._cost_memo[key] = value
        return value

    def has_step_cost(self, key: Hashable) -> bool:
        """True when ``key`` is already memoized (no counters touched).

        Prefetchers use this to decide what still needs computing without
        distorting the hit/miss accounting that :meth:`step_cost` keeps.
        """
        return key in self._cost_memo

    # ------------------------------------------------------------------
    # Layer 5: batched fast-path join expectations
    # ------------------------------------------------------------------

    def batched_join_costs(
        self,
        requests: Sequence[
            Tuple[JoinMethod, DiscreteDistribution, DiscreteDistribution]
        ],
        memory: DiscreteDistribution,
        pool: Optional[WorkerPool] = None,
    ) -> List[float]:
        """``E[Φ]`` for many fast-path joins, one array kernel invocation.

        ``requests`` is a sequence of ``(method, left_dist, right_dist)``
        triples; the returned list is aligned with it.  Each triple is
        memoized under a value-based key, duplicate triples inside one
        call are computed once, and only the memo misses reach the
        vectorized kernel — with the survival table shared across the
        whole batch (the paper's C7 amortisation).  Every value is
        bit-identical to the equivalent single-pair
        :func:`~repro.core.expected_cost.expected_join_cost_fast` call,
        so batching can never change which plan a DP level picks.

        ``pool`` (a :class:`~repro.core.parallel.WorkerPool`) fans the
        memo *misses* out across workers in deterministic chunks; the
        values, the memo contents and the hit/miss accounting all stay
        bit-identical to the sequential call (see
        :func:`~repro.core.expected_cost.expected_join_costs_batched_parallel`).
        """
        stats = self._stats["batched_joins"]
        keys = [
            ("fastjoin", memory, method, left, right)
            for method, left, right in requests
        ]
        out: List[Optional[float]] = [None] * len(requests)
        missing: Dict[Hashable, List[int]] = {}
        for i, key in enumerate(keys):
            cached = self._cost_memo.get(key)
            if cached is not None:
                stats.hits += 1
                out[i] = cached
            else:
                missing.setdefault(key, []).append(i)
        if missing:
            uniq = [requests[positions[0]] for positions in missing.values()]
            values = expected_join_costs_batched_parallel(
                uniq, memory, survival=self.survival_table(memory), pool=pool
            )
            for (key, positions), value in zip(missing.items(), values):
                stats.misses += 1
                v = float(value)
                self._cost_memo[key] = v
                for i in positions:
                    out[i] = v
        return out  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, Dict[str, float]]:
        """Per-cache hit/miss counters (see :class:`CacheStats`)."""
        return {name: cs.as_dict() for name, cs in self._stats.items()}

    def total_hits(self) -> int:
        """Total cache hits across every cache (the headline number)."""
        return sum(cs.hits for cs in self._stats.values())

    def clear(self) -> None:
        """Drop every cached value (counters are reset too)."""
        self._sizes.clear()
        self._bounds.clear()
        self._size_dists.clear()
        self._dist_ops.clear()
        self._survival.clear()
        self._cost_memo.clear()
        for cs in self._stats.values():
            cs.hits = 0
            cs.misses = 0

    def __repr__(self) -> str:
        entries = (
            len(self._sizes)
            + len(self._bounds)
            + len(self._size_dists)
            + len(self._dist_ops)
            + len(self._survival)
            + len(self._cost_memo)
        )
        return (
            f"OptimizationContext({self.query!r}, entries={entries}, "
            f"hits={self.total_hits()})"
        )
