"""Tolerance helpers for cost and probability comparisons (FLT001).

The cost formulas of the paper are discontinuous in memory, expected
costs are long weighted sums, and probability masses are renormalized on
every construction — so two mathematically equal quantities routinely
differ in the last few ulps.  Exact ``==``/``!=`` on them is a latent
bug (and is flagged by the ``FLT001`` lint rule); these helpers are the
sanctioned way to compare:

* :func:`costs_close` — relative tolerance sized for page-I/O costs,
  which span ``1`` to ``1e9`` in the experiments;
* :func:`probs_close` — absolute tolerance sized for probability
  masses, which live in ``[0, 1]`` and accumulate ``1e-16``-scale
  renormalization drift;
* :func:`negligible_mass` — the guard to use before conditioning on or
  dividing by a probability mass: prefix-sum differences can drift a
  true zero to ``±1e-17``, so an exact ``== 0.0`` guard both misses the
  negative case and treats numerical noise as real mass.
"""

from __future__ import annotations

import math

__all__ = [
    "COST_REL_TOL",
    "COST_ABS_TOL",
    "PROB_ABS_TOL",
    "MASS_EPS",
    "costs_close",
    "probs_close",
    "negligible_mass",
]

#: relative tolerance for cost comparisons (costs span many decades).
COST_REL_TOL = 1e-9
#: absolute floor so near-zero costs still compare sanely.
COST_ABS_TOL = 1e-9
#: absolute tolerance for probability-mass comparisons.
PROB_ABS_TOL = 1e-9
#: mass at or below this is renormalization noise, not a real bucket.
MASS_EPS = 1e-15


def costs_close(a: float, b: float, rel_tol: float = COST_REL_TOL,
                abs_tol: float = COST_ABS_TOL) -> bool:
    """True when two costs are equal up to numerical noise."""
    return math.isclose(a, b, rel_tol=rel_tol, abs_tol=abs_tol)


def probs_close(a: float, b: float, abs_tol: float = PROB_ABS_TOL) -> bool:
    """True when two probabilities are equal up to renormalization drift."""
    return math.isclose(a, b, rel_tol=0.0, abs_tol=abs_tol)


def negligible_mass(p: float, eps: float = MASS_EPS) -> bool:
    """True when a probability mass is zero up to prefix-sum drift.

    Use this instead of ``p == 0.0`` before dividing by ``p`` or
    skipping a conditional-expectation branch: cumulative-sum
    cancellation can leave a true zero at ``±1e-17``, which an exact
    check misclassifies in both directions.
    """
    return p <= eps
