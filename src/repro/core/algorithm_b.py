"""Algorithm B: top-c candidates per bucket (Section 3.3).

Like Algorithm A, but each per-bucket System-R invocation retains the top
``c`` plans at every dag node (using the Proposition 3.1 merge to combine
candidate lists), yielding up to ``c·b`` candidates overall.  The wider
candidate set catches plans that are second-best at every single memory
value yet best on average — the case Algorithm A provably misses.
"""

from __future__ import annotations

from typing import List, Optional

from ..costmodel.model import CostModel
from ..optimizer.costers import PointCoster
from ..optimizer.result import OptimizationResult, OptimizerStats, PlanChoice
from ..optimizer.systemr import SystemRDP
from ..plans.query import JoinQuery
from .context import OptimizationContext
from .distributions import DiscreteDistribution

__all__ = ["optimize_algorithm_b"]


def optimize_algorithm_b(
    query: JoinQuery,
    memory: DiscreteDistribution,
    c: int = 3,
    cost_model: Optional[CostModel] = None,
    plan_space: str = "left-deep",
    allow_cross_products: bool = False,
    include_mean: bool = True,
    context: Optional[OptimizationContext] = None,
    level_batching: Optional[bool] = None,
    parallelism=None,
) -> OptimizationResult:
    """Run Algorithm B with ``c`` plans per bucket; pick by expected cost.

    ``candidates`` holds the union of all buckets' top-``c`` lists
    (deduplicated) with true expected costs, best first.
    ``level_batching``/``parallelism`` forward to each per-bucket engine
    and never change the result.
    """
    if c < 1:
        raise ValueError("c must be >= 1")
    cm = cost_model if cost_model is not None else CostModel()
    if context is None:
        context = OptimizationContext(query, cost_model=cm)
    probe_points = list(memory.support())
    if include_mean and memory.mean() not in probe_points:
        probe_points.append(memory.mean())

    stats = OptimizerStats(invocations=0)
    seen: dict = {}
    for m in probe_points:
        engine = SystemRDP(
            PointCoster(m, cost_model=cm),
            plan_space=plan_space,
            allow_cross_products=allow_cross_products,
            top_k=c,
            context=context,
            level_batching=level_batching,
            parallelism=parallelism,
        )
        result = engine.optimize(query)
        stats = stats.merged_with(result.stats)
        for choice in result.candidates:
            seen.setdefault(choice.plan.signature(), choice.plan)

    evals_before = cm.eval_count
    choices: List[PlanChoice] = []
    for plan in seen.values():
        expected = cm.plan_expected_cost(plan, query, memory)
        choices.append(PlanChoice(plan=plan, objective=expected))
    choices.sort(key=lambda ch: ch.objective)
    stats.formula_evaluations += cm.eval_count - evals_before
    return OptimizationResult(best=choices[0], candidates=choices, stats=stats)
