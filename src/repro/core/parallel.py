"""Deterministic worker pools for per-level parallel evaluation.

The DP engine assembles one batch of join-step requests per level
(`SystemRDP._prefetch_level`).  This module supplies the machinery that
fans such a batch out across workers *without changing a single bit* of
the result:

* :func:`parse_parallelism` — normalize every user spelling of the
  ``parallelism=`` knob into ``None`` (sequential) or a
  ``(backend, size)`` pair;
* :func:`chunk_spans` — the deterministic contiguous chunking both the
  parallel evaluator and its tests use.  Chunk boundaries depend only on
  ``(n_items, n_chunks)``, never on timing;
* :class:`WorkerPool` — a reusable executor wrapper whose
  :meth:`WorkerPool.map_ordered` submits chunks in order and gathers
  results in the *same* fixed order, so merging is a plain
  concatenation;
* :func:`get_pool` / :func:`shutdown_pools` — a module-level registry
  so repeated ``optimize(..., parallelism=4)`` calls reuse one pool
  instead of paying thread start-up per query.

Determinism contract (see docs/architecture.md): each request's value
depends only on its own padded row inside the vectorized kernel, and the
kernel's row reductions are ``np.cumsum`` (left-to-right, transparent to
zero padding).  Chunking a batch therefore evaluates exactly the same
float operations per request as the unchunked batch, and a fixed-order
merge reproduces the sequential output bit for bit — the property the
parity suite (`tests/optimizer/test_parallel_parity.py`) pins across
pool sizes.

Threads are the default backend: the numpy kernel releases the GIL in
its array loops, so thread workers scale on multi-core hosts while
sharing distribution objects for free.  The ``processes`` backend is the
fallback for workloads dominated by python-level work; its tasks must be
module-level functions with picklable arguments.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

__all__ = [
    "ParallelismError",
    "parse_parallelism",
    "chunk_spans",
    "WorkerPool",
    "get_pool",
    "shutdown_pools",
]

#: accepted backend names, in documentation order.
_BACKENDS = ("threads", "processes")

#: spellings of "no parallelism".
_OFF = (None, False, 0, 1, "off", "none", "sequential")

ParallelismSpec = Union[None, bool, int, str, Tuple[str, int], "WorkerPool"]


class ParallelismError(ValueError):
    """An unintelligible ``parallelism=`` specification."""


def parse_parallelism(spec: ParallelismSpec) -> Optional[Tuple[str, int]]:
    """Normalize a ``parallelism=`` knob to ``None`` or ``(backend, size)``.

    Accepted spellings::

        None / False / 0 / 1 / "off"        -> None        (sequential)
        True / "auto"                       -> ("threads", cpu_count)
        4                                   -> ("threads", 4)
        "4"                                 -> ("threads", 4)
        "threads:4" / "processes:2"         -> (backend, n)
        ("threads", 4)                      -> (backend, n)

    A resolved size of 1 collapses to ``None``: a one-worker pool would
    only add overhead to an already bit-identical result.
    """
    if isinstance(spec, WorkerPool):
        return (spec.backend, spec.size)
    if spec in _OFF:
        return None
    if spec is True:
        spec = "auto"
    if isinstance(spec, str):
        text = spec.strip().lower()
        if text in ("auto", "max"):
            return _sized("threads", os.cpu_count() or 1)
        if ":" in text:
            backend, _, num = text.partition(":")
            backend = backend.strip()
            if backend not in _BACKENDS:
                raise ParallelismError(
                    f"unknown parallelism backend {backend!r}; "
                    f"expected one of {_BACKENDS}"
                )
            try:
                return _sized(backend, int(num))
            except ValueError as exc:
                raise ParallelismError(
                    f"bad parallelism size in {spec!r}"
                ) from exc
        try:
            return _sized("threads", int(text))
        except ValueError as exc:
            raise ParallelismError(
                f"unintelligible parallelism spec {spec!r}"
            ) from exc
    if isinstance(spec, int):
        return _sized("threads", spec)
    if isinstance(spec, tuple) and len(spec) == 2:
        backend, size = spec
        if backend not in _BACKENDS:
            raise ParallelismError(
                f"unknown parallelism backend {backend!r}; "
                f"expected one of {_BACKENDS}"
            )
        if not isinstance(size, int):
            raise ParallelismError(f"parallelism size must be int, got {size!r}")
        return _sized(backend, size)
    raise ParallelismError(f"unintelligible parallelism spec {spec!r}")


def _sized(backend: str, size: int) -> Optional[Tuple[str, int]]:
    if size < 0:
        raise ParallelismError(f"parallelism size must be >= 0, got {size}")
    if size <= 1:
        return None
    return (backend, size)


def chunk_spans(n_items: int, n_chunks: int) -> List[Tuple[int, int]]:
    """Deterministic contiguous ``[start, stop)`` spans covering a batch.

    The first ``n_items % n_chunks`` chunks are one element longer;
    empty spans are dropped, so at most ``min(n_items, n_chunks)`` spans
    come back.  Boundaries are a pure function of the two sizes — the
    merge order (and with it bit-identity) never depends on scheduling.
    """
    if n_items < 0:
        raise ValueError(f"n_items must be >= 0, got {n_items}")
    if n_chunks < 1:
        raise ValueError(f"n_chunks must be >= 1, got {n_chunks}")
    base, extra = divmod(n_items, n_chunks)
    spans: List[Tuple[int, int]] = []
    start = 0
    for i in range(n_chunks):
        stop = start + base + (1 if i < extra else 0)
        if stop > start:
            spans.append((start, stop))
        start = stop
    return spans


class WorkerPool:
    """A reusable, fixed-size worker pool with order-preserving fan-out.

    The executor is created eagerly in ``__init__`` (before the pool is
    shared), and :meth:`map_ordered` is the only way work enters it:
    tasks are submitted in argument order and results gathered in the
    same order, so callers merge by concatenation and the output is
    independent of worker scheduling.
    """

    def __init__(self, backend: str = "threads", size: int = 2):
        if backend not in _BACKENDS:
            raise ParallelismError(
                f"unknown parallelism backend {backend!r}; "
                f"expected one of {_BACKENDS}"
            )
        if size < 2:
            raise ParallelismError(
                f"a WorkerPool needs >= 2 workers, got {size}; use "
                "parallelism=None for sequential evaluation"
            )
        self.backend = backend
        self.size = size
        if backend == "threads":
            self._executor = ThreadPoolExecutor(
                max_workers=size, thread_name_prefix="repro-level"
            )
        else:
            self._executor = ProcessPoolExecutor(max_workers=size)
        self._closed = False

    def map_ordered(
        self, fn: Callable[..., Any], tasks: Sequence[Tuple[Any, ...]]
    ) -> List[Any]:
        """Run ``fn(*task)`` for each task; results in submission order.

        With the ``processes`` backend ``fn`` must be a module-level
        function and every task argument picklable.
        """
        if self._closed:
            raise ParallelismError("pool is closed")
        futures = [self._executor.submit(fn, *task) for task in tasks]
        return [future.result() for future in futures]

    def close(self) -> None:
        """Shut the executor down; the pool cannot be reused afterwards."""
        if not self._closed:
            self._closed = True
            self._executor.shutdown(wait=True)

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else "open"
        return f"WorkerPool(backend={self.backend!r}, size={self.size}, {state})"


#: (backend, size) -> live pool; guarded by _POOLS_LOCK.
_POOLS: Dict[Tuple[str, int], WorkerPool] = {}
_POOLS_LOCK = threading.Lock()


def get_pool(spec: ParallelismSpec) -> Optional[WorkerPool]:
    """Resolve a ``parallelism=`` spec to a shared pool (or ``None``).

    Pools are cached per ``(backend, size)`` so repeated optimizations
    reuse warm workers; a :class:`WorkerPool` instance passes through
    untouched (caller-managed lifetime).
    """
    global _POOLS
    if isinstance(spec, WorkerPool):
        return spec
    resolved = parse_parallelism(spec)
    if resolved is None:
        return None
    with _POOLS_LOCK:
        pool = _POOLS.get(resolved)
        if pool is None or pool.closed:
            pool = WorkerPool(*resolved)
            _POOLS[resolved] = pool
    return pool


def shutdown_pools() -> None:
    """Close and forget every registry-owned pool (tests, interpreter exit)."""
    global _POOLS
    with _POOLS_LOCK:
        pools = list(_POOLS.values())
        _POOLS = {}
    for pool in pools:
        pool.close()
