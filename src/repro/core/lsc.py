"""The LSC baseline: classical System-R optimization at a point estimate.

"Current optimizers simply approximate each distribution by using the
mean or modal value.  They then choose the plan that is cheapest under
the assumption that the parameters actually take these specific values."
This module is that baseline (Theorem 2.1): the full System-R dynamic
program with a :class:`~repro.optimizer.costers.PointCoster`.
"""

from __future__ import annotations

from typing import Optional

from ..costmodel.model import CostModel
from ..optimizer.costers import PointCoster
from ..optimizer.result import OptimizationResult
from ..optimizer.systemr import SystemRDP
from .context import OptimizationContext
from ..plans.query import JoinQuery
from .distributions import DiscreteDistribution

__all__ = ["optimize_lsc", "lsc_at_mean", "lsc_at_mode"]


def optimize_lsc(
    query: JoinQuery,
    memory: float,
    cost_model: Optional[CostModel] = None,
    plan_space: str = "left-deep",
    allow_cross_products: bool = False,
    top_k: int = 1,
    context: Optional[OptimizationContext] = None,
    level_batching: Optional[bool] = None,
    parallelism=None,
) -> OptimizationResult:
    """Find the least-specific-cost plan at the given memory value.

    This is one invocation of the standard optimizer; Algorithms A and B
    call it once per bucket.  Passing a shared ``context`` lets repeated
    invocations over the same query reuse memoized sizes and step costs.
    ``level_batching``/``parallelism`` forward to the engine and are
    bit-invisible in the result.
    """
    coster = PointCoster(memory, cost_model=cost_model)
    engine = SystemRDP(
        coster,
        plan_space=plan_space,
        allow_cross_products=allow_cross_products,
        top_k=top_k,
        context=context,
        level_batching=level_batching,
        parallelism=parallelism,
    )
    return engine.optimize(query)


def lsc_at_mean(
    query: JoinQuery,
    memory: DiscreteDistribution,
    cost_model: Optional[CostModel] = None,
    plan_space: str = "left-deep",
    allow_cross_products: bool = False,
    context: Optional[OptimizationContext] = None,
) -> OptimizationResult:
    """The classical choice: optimize at the distribution's *mean*."""
    return optimize_lsc(
        query,
        memory.mean(),
        cost_model=cost_model,
        plan_space=plan_space,
        allow_cross_products=allow_cross_products,
        context=context,
    )


def lsc_at_mode(
    query: JoinQuery,
    memory: DiscreteDistribution,
    cost_model: Optional[CostModel] = None,
    plan_space: str = "left-deep",
    allow_cross_products: bool = False,
    context: Optional[OptimizationContext] = None,
) -> OptimizationResult:
    """The other classical choice: optimize at the distribution's *mode*."""
    return optimize_lsc(
        query,
        memory.mode(),
        cost_model=cost_model,
        plan_space=plan_space,
        allow_cross_products=allow_cross_products,
        context=context,
    )
