"""Algorithm D: multiple uncertain parameters (Section 3.6).

Memory, every relation's size, and every predicate's selectivity are all
distributions.  Under the independence assumption the paper shows each
dag node needs only four distributions — memory, ``|B_j|``, ``|A_j|`` and
the join selectivity — with result-size distributions propagated upward
(and rebucketed, Section 3.6.3) for the parents.

The DP itself is unchanged; the :class:`~repro.optimizer.costers.
MultiParamCoster` supplies triple-bucket expected join costs (naive
``b_M·b_L·b_R``, or the paper's linear-time paths with ``fast=True``).

This module also hosts :func:`plan_expected_cost_multiparam`, an
independent whole-plan evaluator for the same objective; the tests verify
the DP's objective values against it.
"""

from __future__ import annotations

from typing import Optional

from ..core.expected_cost import (
    FAST_METHODS,
    expected_external_sort_cost_model,
    expected_join_cost_naive,
    expected_join_cost_naive_model,
)
from ..costmodel.model import CostModel
from ..optimizer.costers import MultiParamCoster
from ..optimizer.result import OptimizationResult
from ..optimizer.systemr import SystemRDP
from ..plans.nodes import Join, Plan, PlanNode, Project, Scan, Sort
from ..plans.nodes import Union as UnionNode
from ..plans.properties import JoinMethod
from ..plans.query import JoinQuery
from ..plans.spju import UnionQuery
from .context import OptimizationContext
from .distributions import DiscreteDistribution

__all__ = ["optimize_algorithm_d", "plan_expected_cost_multiparam"]


def optimize_algorithm_d(
    query: JoinQuery,
    memory: DiscreteDistribution,
    cost_model: Optional[CostModel] = None,
    max_buckets: int = 16,
    fast: bool = False,
    plan_space: str = "left-deep",
    allow_cross_products: bool = False,
    top_k: int = 1,
    context: Optional[OptimizationContext] = None,
    level_batching: Optional[bool] = None,
    parallelism=None,
) -> OptimizationResult:
    """LEC optimization with distributional sizes and selectivities.

    Parameters
    ----------
    max_buckets:
        Rebucketing cap for propagated result-size distributions.
    fast:
        Use the ``O(b_M + b_L + b_R)`` expected-cost algorithms for
        sort-merge / nested-loop / Grace hash instead of the naive triple
        loop.  Identical results (up to float rounding), fewer formula
        evaluations.
    level_batching:
        Forwarded to :class:`~repro.optimizer.systemr.SystemRDP`: batch
        each DP level's join steps through the vectorized kernel.
        Bit-identical plans and costs either way.
    parallelism:
        Fan prefetched level batches out across a worker pool (see
        :func:`repro.core.parallel.parse_parallelism`); bit-identical
        plans, costs and ``formula_evaluations`` either way.
    """
    coster = MultiParamCoster(
        memory,
        cost_model=cost_model,
        max_buckets=max_buckets,
        fast=fast,
    )
    engine = SystemRDP(
        coster,
        plan_space=plan_space,
        allow_cross_products=allow_cross_products,
        top_k=top_k,
        context=context,
        level_batching=level_batching,
        parallelism=parallelism,
    )
    return engine.optimize(query)


def plan_expected_cost_multiparam(
    plan: Plan,
    query: JoinQuery,
    memory: DiscreteDistribution,
    cost_model: Optional[CostModel] = None,
    max_buckets: int = 16,
    fast: bool = False,
    context: Optional[OptimizationContext] = None,
) -> float:
    """``E[Φ(plan, V)]`` with V = (memory, sizes, selectivities).

    Walks the plan tree once, taking the same expectations the
    MultiParamCoster takes during the DP; usable on arbitrary plans (e.g.
    the LSC plan, for regret measurements in E6).  A shared ``context``
    reuses the DP's cached size distributions instead of rebuilding them.
    """
    cm = cost_model if cost_model is not None else CostModel()
    if context is None or not context.matches(query):
        context = OptimizationContext(query, cost_model=cm)

    def size_dist(rels) -> DiscreteDistribution:
        return context.size_distribution(frozenset(rels), max_buckets=max_buckets)

    # Output-write exemptions, mirroring the DP invariant: the block root
    # never pays its own write, and that exemption streams down through
    # projections and through a union root to every arm (ALL arms stream;
    # DISTINCT arm writes are charged inside the union handler instead,
    # at their projected width).
    exempt = set()

    def mark_exempt(node: PlanNode) -> None:
        exempt.add(id(node))
        if isinstance(node, Project):
            mark_exempt(node.child)
        elif isinstance(node, UnionNode):
            for child in node.inputs:
                mark_exempt(child)

    mark_exempt(plan.root)

    def ratio_of(node: Project) -> float:
        if isinstance(query, UnionQuery):
            return query.projection_ratio_of(node.relations())
        return getattr(query, "projection_ratio", 1.0)

    def union_cost(node: UnionNode) -> float:
        # Mirrors MultiParamCoster.union_overhead: projected arm writes
        # plus the expected dedup sort over the clamped convolution.
        if not node.distinct:
            return 0.0
        total = 0.0
        arm_dists = []
        lo_sum = 0.0
        hi_sum = 0.0
        for child in node.inputs:
            stripped = child
            ratio = 1.0
            while isinstance(stripped, Project):
                ratio *= ratio_of(stripped)
                stripped = stripped.child
            rels = frozenset(child.relations())
            dist = size_dist(rels)
            lo, hi = context.subset_bounds(rels)
            if ratio < 1.0:
                dist = dist.scale(ratio).clip(lo=1.0)
                lo, hi = max(1.0, lo * ratio), max(1.0, hi * ratio)
            if isinstance(stripped, (Join, Sort)):
                total += dist.mean()
            arm_dists.append(dist)
            lo_sum += lo
            hi_sum += hi
        acc = arm_dists[0]
        for nxt in arm_dists[1:]:
            acc = context.rebucket(context.convolve(acc, nxt), max_buckets)
        acc = acc.clip(lo=lo_sum * (1.0 - 1e-9), hi=hi_sum * (1.0 + 1e-9))
        return total + expected_external_sort_cost_model(cm, acc, memory)

    def join_presorted(node: Join):
        target = node.output_order_label
        lsorted = node.left.order == target
        rsorted = node.right.order == target
        presorted = node.method is JoinMethod.SORT_MERGE and (lsorted or rsorted)
        return presorted, lsorted, rsorted

    # Pass 1: hand every fast-path join to the batched kernel in one call;
    # the accumulation below then walks nodes in the original order, so
    # the running total matches the sequential evaluator bit-for-bit.
    batched_costs = {}
    if fast:
        fast_nodes = [
            node
            for node in plan.nodes()
            if isinstance(node, Join)
            and node.method in FAST_METHODS
            and not join_presorted(node)[0]
        ]
        if fast_nodes:
            costs = context.batched_join_costs(
                [
                    (
                        node.method,
                        size_dist(node.left.relations()),
                        size_dist(node.right.relations()),
                    )
                    for node in fast_nodes
                ],
                memory,
            )
            batched_costs = {id(n): c for n, c in zip(fast_nodes, costs)}

    total = 0.0
    for node in plan.nodes():
        if isinstance(node, Scan):
            total += cm.scan_node_cost(node, query)
        elif isinstance(node, Project):
            pass  # projection streams: pure width reduction
        elif isinstance(node, UnionNode):
            total += union_cost(node)
        elif isinstance(node, Sort):
            total += expected_external_sort_cost_model(
                cm, size_dist(node.child.relations()), memory
            )
        else:
            assert isinstance(node, Join)
            ld = size_dist(node.left.relations())
            rd = size_dist(node.right.relations())
            presorted, lsorted, rsorted = join_presorted(node)
            if presorted:
                # Interesting-order credit: same formula the DP's coster
                # applies; no linear-time path exists for this variant.
                def fn(_method, l, r, m):
                    return cm.sort_merge_cost_ordered(l, r, m, lsorted, rsorted)

                total += expected_join_cost_naive(fn, node.method, ld, rd, memory)
            elif id(node) in batched_costs:
                total += batched_costs[id(node)]
            else:
                total += expected_join_cost_naive_model(
                    cm, node.method, ld, rd, memory
                )
            if id(node) not in exempt:
                total += size_dist(node.relations()).mean()
    return total
