"""User-facing tools: plan diagrams and diagnostics."""

from .plan_diagram import (
    PlanDiagram,
    memory_plan_diagram,
    memory_selectivity_diagram,
)
from .explain import (
    NodeCostLine,
    explain_costs,
    explain_query,
    render_explanation,
)
from .serialize import SerializationError, dumps, loads

__all__ = [
    "PlanDiagram",
    "memory_plan_diagram",
    "memory_selectivity_diagram",
    "SerializationError",
    "dumps",
    "loads",
    "NodeCostLine",
    "explain_costs",
    "explain_query",
    "render_explanation",
]
