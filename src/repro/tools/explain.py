"""EXPLAIN-style cost breakdowns: where does a plan's expected cost go?

``explain_costs`` walks a plan and attributes cost to each node under a
point memory value or a distribution — the optimizer-side analogue of
EXPLAIN ANALYZE, useful both for debugging the cost model and for
understanding *why* the LEC plan differs from the LSC plan (typically:
one node whose cost distribution has a fat tail).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

from ..core.context import OptimizationContext
from ..core.distributions import DiscreteDistribution, point_mass
from ..costmodel.estimates import node_size
from ..costmodel.model import CostModel
from ..optimizer.facade import last_context, optimize
from ..optimizer.result import OptimizationResult
from ..plans.nodes import Join, Plan, PlanNode, Project, Scan, Sort
from ..plans.nodes import Union as UnionNode
from ..plans.query import JoinQuery

__all__ = [
    "NodeCostLine",
    "explain_costs",
    "explain_query",
    "render_explanation",
]


@dataclass
class NodeCostLine:
    """Cost attribution for one plan node."""

    depth: int
    label: str
    out_rows: float
    out_pages: float
    expected_cost: float
    worst_cost: float
    share: float  # fraction of the whole plan's expected cost


def explain_costs(
    plan: Plan,
    query: JoinQuery,
    memory: Union[float, DiscreteDistribution],
    cost_model: Optional[CostModel] = None,
    context: Optional[OptimizationContext] = None,
) -> List[NodeCostLine]:
    """Per-node expected/worst costs; lines in top-down plan order.

    A shared ``context`` (e.g. the one the optimizer just used — see
    :func:`explain_query`) serves node sizes from its memo instead of
    re-estimating them.
    """
    cm = cost_model if cost_model is not None else CostModel(count_evaluations=False)
    dist = point_mass(float(memory)) if isinstance(memory, (int, float)) else memory
    if context is not None and not context.matches(query):
        context = None

    lines: List[NodeCostLine] = []

    def node_cost_at(node: PlanNode, m: float) -> float:
        return cm._node_cost(node, plan, query, m)  # noqa: SLF001 — same package family

    def visit(node: PlanNode, depth: int) -> None:
        per_value = [node_cost_at(node, m) for m in dist.support()]
        expected = sum(
            p * c for (_, p), c in zip(dist.items(), per_value)
        )
        if context is not None and not isinstance(node, (Project, UnionNode)):
            est = context.subset_size(node.relations())
        else:
            # Projection/union output sizes are node-shaped (projected
            # width, summed arms), not plain subset estimates.
            est = node_size(node, query)
        if isinstance(node, Scan):
            label = f"Scan({node.signature()})"
        elif isinstance(node, Sort):
            label = f"Sort[{node.sort_order}]"
        elif isinstance(node, Project):
            label = "Project" if node.label is None else f"Project[{node.label}]"
        elif isinstance(node, UnionNode):
            label = "UnionDistinct" if node.distinct else "UnionAll"
        else:
            assert isinstance(node, Join)
            label = f"Join[{node.method.value} on {node.predicate_label}]"
        lines.append(
            NodeCostLine(
                depth=depth,
                label=label,
                out_rows=est.rows,
                out_pages=est.pages,
                expected_cost=expected,
                worst_cost=max(per_value),
                share=0.0,
            )
        )
        for child in node.children:
            visit(child, depth + 1)

    visit(plan.root, 0)
    total = sum(line.expected_cost for line in lines)
    for line in lines:
        line.share = line.expected_cost / total if total > 0 else 0.0
    return lines


def explain_query(
    query: JoinQuery,
    objective: str = "lec",
    *,
    memory: Union[float, DiscreteDistribution, None] = None,
    cost_model: Optional[CostModel] = None,
    **optimize_kwargs,
) -> Tuple[OptimizationResult, List[NodeCostLine]]:
    """Optimize through :func:`repro.optimize` and explain the winner.

    One-stop EXPLAIN: returns the optimization result plus the per-node
    cost attribution of the chosen plan.  The explanation reuses the
    optimizer's own context, so size estimates come straight from the DP's
    memo.  Extra keyword arguments are forwarded to the facade
    (``plan_space``, ``top_k``, ``max_buckets``, ...).
    """
    result = optimize(
        query, objective, memory=memory, cost_model=cost_model, **optimize_kwargs
    )
    dist = (
        point_mass(float(memory))
        if isinstance(memory, (int, float))
        else memory
    )
    lines = explain_costs(
        result.plan,
        query,
        dist,
        cost_model=cost_model,
        context=last_context(),
    )
    return result, lines


def render_explanation(lines: List[NodeCostLine]) -> str:
    """Aligned text rendering of an explanation."""
    out = [
        f"{'operator':<46}{'out pages':>12}{'E[cost]':>14}{'worst':>14}{'share':>8}"
    ]
    for line in lines:
        name = "  " * line.depth + line.label
        out.append(
            f"{name:<46}{line.out_pages:>12,.0f}{line.expected_cost:>14,.0f}"
            f"{line.worst_cost:>14,.0f}{line.share:>8.1%}"
        )
    return "\n".join(out)
