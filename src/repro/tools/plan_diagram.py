"""Plan diagrams: which plan is optimal where in parameter space.

The visual companion to parametric optimization: sample a grid over one
or two uncertain parameters, run the point (LSC) optimizer at each cell,
and render the resulting plan regions as an ASCII map with a legend —
the classic "plan diagram" picture, in the terminal.

The diagrams make the paper's core geometry visible: the parameter axis
fragments into plan regions whose boundaries are the cost-formula
breakpoints, and a distribution straddling a boundary is exactly the
situation where LEC and LSC diverge.
"""

from __future__ import annotations

import math
import string
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.lsc import optimize_lsc
from ..costmodel.model import CostModel
from ..plans.query import JoinPredicate, JoinQuery

__all__ = ["PlanDiagram", "memory_plan_diagram", "memory_selectivity_diagram"]

_LETTERS = string.ascii_uppercase + string.ascii_lowercase + string.digits


@dataclass
class PlanDiagram:
    """A grid of optimal-plan letters plus the letter → plan legend.

    ``grid[row][col]`` corresponds to ``y_values[row]`` (first axis) and
    ``x_values[col]``; for one-dimensional diagrams there is a single row
    and ``y_label`` is empty.
    """

    x_label: str
    x_values: List[float]
    y_label: str
    y_values: List[float]
    grid: List[List[str]] = field(default_factory=list)
    legend: Dict[str, str] = field(default_factory=dict)

    @property
    def n_plans(self) -> int:
        """Number of distinct optimal plans over the sampled grid."""
        return len(self.legend)

    def letter_at(self, col: int, row: int = 0) -> str:
        """Plan letter at a grid cell."""
        return self.grid[row][col]

    def region_boundaries(self, row: int = 0) -> List[float]:
        """x-values where the optimal plan changes along one row."""
        out: List[float] = []
        cells = self.grid[row]
        for i in range(1, len(cells)):
            if cells[i] != cells[i - 1]:
                out.append(self.x_values[i])
        return out

    def render(self) -> str:
        """Multi-line ASCII rendering with axes and legend."""
        lines: List[str] = []
        is_2d = len(self.y_values) > 1
        y_width = max((len(_fmt_axis(v)) for v in self.y_values), default=0)
        for row_idx in range(len(self.grid) - 1, -1, -1):
            prefix = (
                f"{_fmt_axis(self.y_values[row_idx]):>{y_width}} | " if is_2d else ""
            )
            lines.append(prefix + "".join(self.grid[row_idx]))
        pad = " " * (y_width + 3) if is_2d else ""
        lines.append(pad + "-" * len(self.x_values))
        lo, hi = _fmt_axis(self.x_values[0]), _fmt_axis(self.x_values[-1])
        gap = max(1, len(self.x_values) - len(lo) - len(hi))
        lines.append(pad + lo + " " * gap + hi)
        lines.append(pad + f"({self.x_label})" + (f" x ({self.y_label})" if is_2d else ""))
        lines.append("")
        for letter, signature in self.legend.items():
            lines.append(f"  {letter} = {signature}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def _fmt_axis(v: float) -> str:
    if v == 0:
        return "0"
    if abs(v) >= 1e5 or abs(v) < 1e-3:
        return f"{v:.0e}"
    if abs(v) >= 1000:
        return f"{v / 1000:g}k"
    return f"{v:g}"


def _geom_grid(lo: float, hi: float, n: int) -> List[float]:
    if not 0 < lo <= hi:
        raise ValueError("need 0 < lo <= hi")
    if n < 2:
        raise ValueError("need at least 2 grid points")
    step = (math.log(hi) - math.log(lo)) / (n - 1)
    return [math.exp(math.log(lo) + i * step) for i in range(n)]


def memory_plan_diagram(
    query: JoinQuery,
    memory_lo: float,
    memory_hi: float,
    width: int = 60,
    cost_model: Optional[CostModel] = None,
    plan_space="left-deep",
) -> PlanDiagram:
    """One-dimensional plan diagram over the memory axis (log-spaced).

    ``plan_space`` selects the search space per cell — a bushy diagram
    shows where tree shape (not just order) flips with memory.
    """
    cm = cost_model if cost_model is not None else CostModel(count_evaluations=False)
    xs = _geom_grid(memory_lo, memory_hi, width)
    diagram = PlanDiagram(
        x_label="memory pages, log scale",
        x_values=xs,
        y_label="",
        y_values=[0.0],
    )
    row: List[str] = []
    assignments: Dict[str, str] = {}
    for m in xs:
        plan = optimize_lsc(query, m, cost_model=cm, plan_space=plan_space).plan
        sig = plan.signature()
        if sig not in assignments:
            if len(assignments) >= len(_LETTERS):
                raise ValueError("too many distinct plans for the legend")
            assignments[sig] = _LETTERS[len(assignments)]
            diagram.legend[assignments[sig]] = sig
        row.append(assignments[sig])
    diagram.grid = [row]
    return diagram


def memory_selectivity_diagram(
    query: JoinQuery,
    predicate_label: str,
    memory_lo: float,
    memory_hi: float,
    selectivity_lo: float,
    selectivity_hi: float,
    width: int = 48,
    height: int = 14,
    cost_model: Optional[CostModel] = None,
    plan_space="left-deep",
) -> PlanDiagram:
    """Two-dimensional plan diagram over (memory, one selectivity).

    Both axes log-spaced; each cell runs the point optimizer with the
    predicate's selectivity pinned to the cell's value, searching
    ``plan_space``.
    """
    cm = cost_model if cost_model is not None else CostModel(count_evaluations=False)
    if not any(p.label == predicate_label for p in query.predicates):
        raise ValueError(f"no predicate labelled {predicate_label!r}")
    xs = _geom_grid(memory_lo, memory_hi, width)
    ys = _geom_grid(selectivity_lo, selectivity_hi, height)
    diagram = PlanDiagram(
        x_label="memory pages, log scale",
        x_values=xs,
        y_label=f"selectivity of {predicate_label}, log scale",
        y_values=ys,
    )
    assignments: Dict[str, str] = {}
    for sel in ys:
        pinned = _pin_selectivity(query, predicate_label, sel)
        row: List[str] = []
        for m in xs:
            plan = optimize_lsc(pinned, m, cost_model=cm, plan_space=plan_space).plan
            sig = plan.signature()
            if sig not in assignments:
                if len(assignments) >= len(_LETTERS):
                    raise ValueError("too many distinct plans for the legend")
                assignments[sig] = _LETTERS[len(assignments)]
                diagram.legend[assignments[sig]] = sig
            row.append(assignments[sig])
        diagram.grid.append(row)
    return diagram


def _pin_selectivity(
    query: JoinQuery, label: str, selectivity: float
) -> JoinQuery:
    preds = [
        JoinPredicate(
            left=p.left,
            right=p.right,
            selectivity=min(1.0, selectivity) if p.label == label else p.selectivity,
            label=p.label,
            equiv_class=p.equiv_class,
            result_pages_override=(
                None if p.label == label else p.result_pages_override
            ),
        )
        for p in query.predicates
    ]
    return JoinQuery(
        list(query.relations),
        preds,
        required_order=query.required_order,
        rows_per_page=query.rows_per_page,
        projection_ratio=getattr(query, "projection_ratio", 1.0),
    )
