"""JSON (de)serialization of plans, distributions and plan stores.

The paper's compile-time/start-up split needs persistence: "we can
precompute the best expected plan under a number of possible
distributions ... and store these expected plans, for use at query
execution time."  This module provides the storage format — plain JSON
dictionaries for plan trees, discrete distributions, parametric plan
sets and choice plans — so a compile-time process can hand plans to a
start-up process (or a test can round-trip them).

Formats are versioned with a ``"kind"`` tag; deserialization validates
structure and raises :class:`SerializationError` on anything unexpected.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict

from ..core.distributions import DiscreteDistribution
from ..core.markov import MarkovParameter
from ..plans.nodes import Join, Plan, PlanNode, Project, Scan, Sort
from ..plans.nodes import Union as UnionNode
from ..plans.properties import AccessPath, JoinMethod
from ..plans.query import IndexInfo, JoinPredicate, JoinQuery, QueryError, RelationSpec
from ..plans.spju import UnionQuery
from ..strategies.choice_nodes import ChoicePlan
from ..strategies.parametric import ParametricPlanSet, _Region

__all__ = [
    "SerializationError",
    "plan_to_dict",
    "plan_from_dict",
    "distribution_to_dict",
    "distribution_from_dict",
    "markov_to_dict",
    "markov_from_dict",
    "query_to_dict",
    "query_from_dict",
    "choice_plan_to_dict",
    "choice_plan_from_dict",
    "parametric_to_dict",
    "parametric_from_dict",
    "dumps",
    "loads",
]


class SerializationError(ValueError):
    """Raised when a document cannot be decoded into the requested type."""


# ----------------------------------------------------------------------
# Plans
# ----------------------------------------------------------------------


def _node_to_dict(node: PlanNode) -> Dict[str, Any]:
    if isinstance(node, Scan):
        return {
            "op": "scan",
            "table": node.table,
            "access": node.access.value,
            "filter_label": node.filter_label,
        }
    if isinstance(node, Sort):
        return {
            "op": "sort",
            "order": node.sort_order,
            "child": _node_to_dict(node.child),
        }
    if isinstance(node, Project):
        return {
            "op": "project",
            "label": node.label,
            "child": _node_to_dict(node.child),
        }
    if isinstance(node, UnionNode):
        return {
            "op": "union",
            "distinct": node.distinct,
            "inputs": [_node_to_dict(child) for child in node.inputs],
        }
    if isinstance(node, Join):
        return {
            "op": "join",
            "method": node.method.value,
            "predicate": node.predicate_label,
            "order_label": node.order_label,
            "left": _node_to_dict(node.left),
            "right": _node_to_dict(node.right),
        }
    raise SerializationError(
        f"cannot encode plan node of type {type(node).__name__}"
    )


def _node_from_dict(doc: Dict[str, Any]) -> PlanNode:
    try:
        op = doc["op"]
    except (TypeError, KeyError):
        raise SerializationError("plan node document missing 'op'") from None
    if op == "scan":
        try:
            access = AccessPath(doc.get("access", "scan"))
        except ValueError:
            raise SerializationError(
                f"unknown access path {doc.get('access')!r}"
            ) from None
        return Scan(
            table=doc["table"],
            access=access,
            filter_label=doc.get("filter_label"),
        )
    if op == "sort":
        return Sort(child=_node_from_dict(doc["child"]), sort_order=doc["order"])
    if op == "project":
        return Project(child=_node_from_dict(doc["child"]), label=doc.get("label"))
    if op == "union":
        inputs = doc.get("inputs")
        if not isinstance(inputs, list) or len(inputs) < 2:
            raise SerializationError(
                "union node needs a list of at least two inputs"
            )
        return UnionNode(
            inputs=tuple(_node_from_dict(d) for d in inputs),
            distinct=bool(doc.get("distinct", False)),
        )
    if op == "join":
        try:
            method = JoinMethod(doc["method"])
        except (ValueError, KeyError):
            raise SerializationError(
                f"unknown join method {doc.get('method')!r}"
            ) from None
        # Decoding reconstructs a tree already admitted by some space;
        # no shape decision is being made here.
        return Join(  # optlint: disable=PLAN001
            left=_node_from_dict(doc["left"]),
            right=_node_from_dict(doc["right"]),
            method=method,
            predicate_label=doc["predicate"],
            order_label=doc.get("order_label"),
        )
    raise SerializationError(f"unknown plan operator {op!r}")


def plan_to_dict(plan: Plan) -> Dict[str, Any]:
    """Encode a plan tree as a JSON-compatible dictionary.

    Emits format ``version: 2``, which adds the ``project`` and ``union``
    node kinds for SPJU plans; version-1 documents (select-join plans)
    decode unchanged.
    """
    return {"kind": "plan", "version": 2, "root": _node_to_dict(plan.root)}


def plan_from_dict(doc: Dict[str, Any]) -> Plan:
    """Decode a plan tree (format versions 1 and 2);
    raises :class:`SerializationError` if invalid."""
    if not isinstance(doc, dict) or doc.get("kind") != "plan":
        raise SerializationError("not a plan document")
    version = doc.get("version", 1)
    if version not in (1, 2):
        raise SerializationError(f"unsupported plan document version {version!r}")
    try:
        return Plan(_node_from_dict(doc["root"]))
    except KeyError as exc:
        raise SerializationError(f"plan document missing field {exc}") from None
    except TypeError as exc:
        raise SerializationError(f"malformed plan document: {exc}") from None


# ----------------------------------------------------------------------
# Distributions
# ----------------------------------------------------------------------


def distribution_to_dict(dist: DiscreteDistribution) -> Dict[str, Any]:
    """Encode a discrete distribution."""
    return {
        "kind": "distribution",
        "version": 1,
        "values": [float(v) for v in dist.values],
        "probs": [float(p) for p in dist.probs],
    }


def distribution_from_dict(doc: Dict[str, Any]) -> DiscreteDistribution:
    """Decode a discrete distribution."""
    if not isinstance(doc, dict) or doc.get("kind") != "distribution":
        raise SerializationError("not a distribution document")
    try:
        return DiscreteDistribution(doc["values"], doc["probs"])
    except (KeyError, ValueError, TypeError) as exc:
        raise SerializationError(f"bad distribution document: {exc}") from None


def markov_to_dict(param: MarkovParameter) -> Dict[str, Any]:
    """Encode a Markov-chain parameter (states, initial, transition)."""
    return {
        "kind": "markov_parameter",
        "version": 1,
        "states": [float(s) for s in param.states],
        "initial": [float(p) for p in param.initial],
        "transition": [[float(t) for t in row] for row in param.transition],
    }


def markov_from_dict(doc: Dict[str, Any]) -> MarkovParameter:
    """Decode a Markov-chain parameter."""
    if not isinstance(doc, dict) or doc.get("kind") != "markov_parameter":
        raise SerializationError("not a markov parameter document")
    try:
        return MarkovParameter(doc["states"], doc["initial"], doc["transition"])
    except (KeyError, ValueError, TypeError) as exc:
        raise SerializationError(f"bad markov parameter document: {exc}") from None


# ----------------------------------------------------------------------
# Queries
# ----------------------------------------------------------------------

def _relation_to_dict(rel: RelationSpec) -> Dict[str, Any]:
    doc: Dict[str, Any] = {"name": rel.name, "pages": float(rel.pages)}
    if rel.rows is not None:
        doc["rows"] = float(rel.rows)
    if rel.pages_dist is not None:
        doc["pages_dist"] = distribution_to_dict(rel.pages_dist)
    doc["filter_selectivity"] = float(rel.filter_selectivity)
    if rel.index is not None:
        doc["index"] = {
            "height": rel.index.height,
            "clustered": rel.index.clustered,
        }
    return doc


def _relation_from_dict(doc: Dict[str, Any]) -> RelationSpec:
    index = None
    if doc.get("index") is not None:
        idx = doc["index"]
        index = IndexInfo(
            height=int(idx.get("height", 2)),
            clustered=bool(idx.get("clustered", False)),
        )
    pages_dist = None
    if doc.get("pages_dist") is not None:
        pages_dist = distribution_from_dict(doc["pages_dist"])
    return RelationSpec(
        name=doc["name"],
        pages=float(doc["pages"]),
        rows=None if doc.get("rows") is None else float(doc["rows"]),
        pages_dist=pages_dist,
        filter_selectivity=float(doc.get("filter_selectivity", 1.0)),
        index=index,
    )


def _predicate_to_dict(pred: JoinPredicate) -> Dict[str, Any]:
    doc: Dict[str, Any] = {
        "left": pred.left,
        "right": pred.right,
        "selectivity": float(pred.selectivity),
        "label": pred.label,
    }
    if pred.selectivity_dist is not None:
        doc["selectivity_dist"] = distribution_to_dict(pred.selectivity_dist)
    if pred.result_pages_override is not None:
        doc["result_pages_override"] = float(pred.result_pages_override)
    if pred.equiv_class is not None:
        doc["equiv_class"] = pred.equiv_class
    return doc


def _predicate_from_dict(doc: Dict[str, Any]) -> JoinPredicate:
    sel_dist = None
    if doc.get("selectivity_dist") is not None:
        sel_dist = distribution_from_dict(doc["selectivity_dist"])
    override = doc.get("result_pages_override")
    return JoinPredicate(
        left=doc["left"],
        right=doc["right"],
        selectivity=float(doc["selectivity"]),
        label=doc.get("label"),
        selectivity_dist=sel_dist,
        result_pages_override=None if override is None else float(override),
        equiv_class=doc.get("equiv_class"),
    )


def _join_query_to_dict(query: JoinQuery) -> Dict[str, Any]:
    return {
        "relations": [_relation_to_dict(r) for r in query.relations],
        "predicates": [_predicate_to_dict(p) for p in query.predicates],
        "required_order": query.required_order,
        "rows_per_page": query.rows_per_page,
        "projection_ratio": float(query.projection_ratio),
    }


def _join_query_from_dict(doc: Dict[str, Any]) -> JoinQuery:
    return JoinQuery(
        relations=[_relation_from_dict(r) for r in doc["relations"]],
        predicates=[_predicate_from_dict(p) for p in doc.get("predicates", ())],
        required_order=doc.get("required_order"),
        rows_per_page=int(doc.get("rows_per_page", 100)),
        projection_ratio=float(doc.get("projection_ratio", 1.0)),
    )


def query_to_dict(query: JoinQuery) -> Dict[str, Any]:
    """Encode a logical query block — the cluster tier's request wire format.

    Plain :class:`JoinQuery` blocks carry their relations (with optional
    size distributions and index info) and predicates (with optional
    selectivity distributions); a :class:`UnionQuery` nests its arms.
    """
    if isinstance(query, UnionQuery):
        return {
            "kind": "query",
            "version": 1,
            "union": {
                "distinct": query.distinct,
                "arms": [_join_query_to_dict(a) for a in query.arms],
            },
        }
    doc = _join_query_to_dict(query)
    doc["kind"] = "query"
    doc["version"] = 1
    return doc


def query_from_dict(doc: Dict[str, Any]) -> JoinQuery:
    """Decode a logical query block (plain or union);
    raises :class:`SerializationError` if invalid."""
    if not isinstance(doc, dict) or doc.get("kind") != "query":
        raise SerializationError("not a query document")
    version = doc.get("version", 1)
    if version != 1:
        raise SerializationError(f"unsupported query document version {version!r}")
    try:
        union = doc.get("union")
        if union is not None:
            arms = [_join_query_from_dict(a) for a in union["arms"]]
            return UnionQuery(arms, distinct=bool(union.get("distinct", False)))
        return _join_query_from_dict(doc)
    except (KeyError, ValueError, TypeError, QueryError) as exc:
        raise SerializationError(f"bad query document: {exc}") from None


# ----------------------------------------------------------------------
# Plan stores (parametric / choice)
# ----------------------------------------------------------------------


def choice_plan_to_dict(cp: ChoicePlan) -> Dict[str, Any]:
    """Encode a choose-plan artifact (thresholds + alternatives)."""
    return {
        "kind": "choice_plan",
        "version": 1,
        "thresholds": list(cp.thresholds),
        "alternatives": [_node_to_dict(p.root) for p in cp.alternatives],
    }


def choice_plan_from_dict(doc: Dict[str, Any]) -> ChoicePlan:
    """Decode a choose-plan artifact."""
    if not isinstance(doc, dict) or doc.get("kind") != "choice_plan":
        raise SerializationError("not a choice plan document")
    try:
        return ChoicePlan(
            thresholds=[float(t) for t in doc["thresholds"]],
            alternatives=[Plan(_node_from_dict(d)) for d in doc["alternatives"]],
        )
    except (KeyError, ValueError, TypeError) as exc:
        raise SerializationError(f"bad choice plan document: {exc}") from None


def parametric_to_dict(pset: ParametricPlanSet) -> Dict[str, Any]:
    """Encode a parametric plan set (regions with their plans)."""
    return {
        "kind": "parametric_plan_set",
        "version": 1,
        "regions": [
            {
                "lo": r.lo,
                "hi": None if math.isinf(r.hi) else r.hi,
                "plan": _node_to_dict(r.plan.root),
                "cost_at_rep": r.cost_at_rep,
            }
            for r in pset.regions
        ],
    }


def parametric_from_dict(doc: Dict[str, Any]) -> ParametricPlanSet:
    """Decode a parametric plan set."""
    if not isinstance(doc, dict) or doc.get("kind") != "parametric_plan_set":
        raise SerializationError("not a parametric plan set document")
    try:
        regions = [
            _Region(
                lo=float(r["lo"]),
                hi=math.inf if r["hi"] is None else float(r["hi"]),
                plan=Plan(_node_from_dict(r["plan"])),
                cost_at_rep=float(r["cost_at_rep"]),
            )
            for r in doc["regions"]
        ]
    except (KeyError, ValueError, TypeError) as exc:
        raise SerializationError(f"bad parametric document: {exc}") from None
    return ParametricPlanSet(regions=regions)


# ----------------------------------------------------------------------
# Top-level helpers
# ----------------------------------------------------------------------

_DECODERS = {
    "plan": plan_from_dict,
    "distribution": distribution_from_dict,
    "markov_parameter": markov_from_dict,
    "query": query_from_dict,
    "choice_plan": choice_plan_from_dict,
    "parametric_plan_set": parametric_from_dict,
}


def dumps(obj) -> str:
    """Serialize a supported object to a JSON string."""
    if isinstance(obj, Plan):
        doc = plan_to_dict(obj)
    elif isinstance(obj, DiscreteDistribution):
        doc = distribution_to_dict(obj)
    elif isinstance(obj, MarkovParameter):
        doc = markov_to_dict(obj)
    elif isinstance(obj, JoinQuery):
        doc = query_to_dict(obj)
    elif isinstance(obj, ChoicePlan):
        doc = choice_plan_to_dict(obj)
    elif isinstance(obj, ParametricPlanSet):
        doc = parametric_to_dict(obj)
    else:
        raise SerializationError(
            f"cannot serialize objects of type {type(obj).__name__}"
        )
    return json.dumps(doc, sort_keys=True)


def loads(text: str):
    """Deserialize a JSON string produced by :func:`dumps`."""
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SerializationError(f"invalid JSON: {exc}") from None
    if not isinstance(doc, dict) or "kind" not in doc:
        raise SerializationError("document has no 'kind' tag")
    if not isinstance(doc["kind"], str):
        raise SerializationError(f"'kind' must be a string, got {doc['kind']!r}")
    decoder = _DECODERS.get(doc["kind"])
    if decoder is None:
        raise SerializationError(f"unknown document kind {doc['kind']!r}")
    return decoder(doc)
