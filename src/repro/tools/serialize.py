"""JSON (de)serialization of plans, distributions and plan stores.

The paper's compile-time/start-up split needs persistence: "we can
precompute the best expected plan under a number of possible
distributions ... and store these expected plans, for use at query
execution time."  This module provides the storage format — plain JSON
dictionaries for plan trees, discrete distributions, parametric plan
sets and choice plans — so a compile-time process can hand plans to a
start-up process (or a test can round-trip them).

Formats are versioned with a ``"kind"`` tag; deserialization validates
structure and raises :class:`SerializationError` on anything unexpected.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict

from ..core.distributions import DiscreteDistribution
from ..plans.nodes import Join, Plan, PlanNode, Project, Scan, Sort
from ..plans.nodes import Union as UnionNode
from ..plans.properties import AccessPath, JoinMethod
from ..strategies.choice_nodes import ChoicePlan
from ..strategies.parametric import ParametricPlanSet, _Region

__all__ = [
    "SerializationError",
    "plan_to_dict",
    "plan_from_dict",
    "distribution_to_dict",
    "distribution_from_dict",
    "choice_plan_to_dict",
    "choice_plan_from_dict",
    "parametric_to_dict",
    "parametric_from_dict",
    "dumps",
    "loads",
]


class SerializationError(ValueError):
    """Raised when a document cannot be decoded into the requested type."""


# ----------------------------------------------------------------------
# Plans
# ----------------------------------------------------------------------


def _node_to_dict(node: PlanNode) -> Dict[str, Any]:
    if isinstance(node, Scan):
        return {
            "op": "scan",
            "table": node.table,
            "access": node.access.value,
            "filter_label": node.filter_label,
        }
    if isinstance(node, Sort):
        return {
            "op": "sort",
            "order": node.sort_order,
            "child": _node_to_dict(node.child),
        }
    if isinstance(node, Project):
        return {
            "op": "project",
            "label": node.label,
            "child": _node_to_dict(node.child),
        }
    if isinstance(node, UnionNode):
        return {
            "op": "union",
            "distinct": node.distinct,
            "inputs": [_node_to_dict(child) for child in node.inputs],
        }
    if isinstance(node, Join):
        return {
            "op": "join",
            "method": node.method.value,
            "predicate": node.predicate_label,
            "order_label": node.order_label,
            "left": _node_to_dict(node.left),
            "right": _node_to_dict(node.right),
        }
    raise SerializationError(
        f"cannot encode plan node of type {type(node).__name__}"
    )


def _node_from_dict(doc: Dict[str, Any]) -> PlanNode:
    try:
        op = doc["op"]
    except (TypeError, KeyError):
        raise SerializationError("plan node document missing 'op'") from None
    if op == "scan":
        try:
            access = AccessPath(doc.get("access", "scan"))
        except ValueError:
            raise SerializationError(
                f"unknown access path {doc.get('access')!r}"
            ) from None
        return Scan(
            table=doc["table"],
            access=access,
            filter_label=doc.get("filter_label"),
        )
    if op == "sort":
        return Sort(child=_node_from_dict(doc["child"]), sort_order=doc["order"])
    if op == "project":
        return Project(child=_node_from_dict(doc["child"]), label=doc.get("label"))
    if op == "union":
        inputs = doc.get("inputs")
        if not isinstance(inputs, list) or len(inputs) < 2:
            raise SerializationError(
                "union node needs a list of at least two inputs"
            )
        return UnionNode(
            inputs=tuple(_node_from_dict(d) for d in inputs),
            distinct=bool(doc.get("distinct", False)),
        )
    if op == "join":
        try:
            method = JoinMethod(doc["method"])
        except (ValueError, KeyError):
            raise SerializationError(
                f"unknown join method {doc.get('method')!r}"
            ) from None
        # Decoding reconstructs a tree already admitted by some space;
        # no shape decision is being made here.
        return Join(  # optlint: disable=PLAN001
            left=_node_from_dict(doc["left"]),
            right=_node_from_dict(doc["right"]),
            method=method,
            predicate_label=doc["predicate"],
            order_label=doc.get("order_label"),
        )
    raise SerializationError(f"unknown plan operator {op!r}")


def plan_to_dict(plan: Plan) -> Dict[str, Any]:
    """Encode a plan tree as a JSON-compatible dictionary.

    Emits format ``version: 2``, which adds the ``project`` and ``union``
    node kinds for SPJU plans; version-1 documents (select-join plans)
    decode unchanged.
    """
    return {"kind": "plan", "version": 2, "root": _node_to_dict(plan.root)}


def plan_from_dict(doc: Dict[str, Any]) -> Plan:
    """Decode a plan tree (format versions 1 and 2);
    raises :class:`SerializationError` if invalid."""
    if not isinstance(doc, dict) or doc.get("kind") != "plan":
        raise SerializationError("not a plan document")
    version = doc.get("version", 1)
    if version not in (1, 2):
        raise SerializationError(f"unsupported plan document version {version!r}")
    try:
        return Plan(_node_from_dict(doc["root"]))
    except KeyError as exc:
        raise SerializationError(f"plan document missing field {exc}") from None
    except TypeError as exc:
        raise SerializationError(f"malformed plan document: {exc}") from None


# ----------------------------------------------------------------------
# Distributions
# ----------------------------------------------------------------------


def distribution_to_dict(dist: DiscreteDistribution) -> Dict[str, Any]:
    """Encode a discrete distribution."""
    return {
        "kind": "distribution",
        "version": 1,
        "values": [float(v) for v in dist.values],
        "probs": [float(p) for p in dist.probs],
    }


def distribution_from_dict(doc: Dict[str, Any]) -> DiscreteDistribution:
    """Decode a discrete distribution."""
    if not isinstance(doc, dict) or doc.get("kind") != "distribution":
        raise SerializationError("not a distribution document")
    try:
        return DiscreteDistribution(doc["values"], doc["probs"])
    except (KeyError, ValueError, TypeError) as exc:
        raise SerializationError(f"bad distribution document: {exc}") from None


# ----------------------------------------------------------------------
# Plan stores (parametric / choice)
# ----------------------------------------------------------------------


def choice_plan_to_dict(cp: ChoicePlan) -> Dict[str, Any]:
    """Encode a choose-plan artifact (thresholds + alternatives)."""
    return {
        "kind": "choice_plan",
        "version": 1,
        "thresholds": list(cp.thresholds),
        "alternatives": [_node_to_dict(p.root) for p in cp.alternatives],
    }


def choice_plan_from_dict(doc: Dict[str, Any]) -> ChoicePlan:
    """Decode a choose-plan artifact."""
    if not isinstance(doc, dict) or doc.get("kind") != "choice_plan":
        raise SerializationError("not a choice plan document")
    try:
        return ChoicePlan(
            thresholds=[float(t) for t in doc["thresholds"]],
            alternatives=[Plan(_node_from_dict(d)) for d in doc["alternatives"]],
        )
    except (KeyError, ValueError, TypeError) as exc:
        raise SerializationError(f"bad choice plan document: {exc}") from None


def parametric_to_dict(pset: ParametricPlanSet) -> Dict[str, Any]:
    """Encode a parametric plan set (regions with their plans)."""
    return {
        "kind": "parametric_plan_set",
        "version": 1,
        "regions": [
            {
                "lo": r.lo,
                "hi": None if math.isinf(r.hi) else r.hi,
                "plan": _node_to_dict(r.plan.root),
                "cost_at_rep": r.cost_at_rep,
            }
            for r in pset.regions
        ],
    }


def parametric_from_dict(doc: Dict[str, Any]) -> ParametricPlanSet:
    """Decode a parametric plan set."""
    if not isinstance(doc, dict) or doc.get("kind") != "parametric_plan_set":
        raise SerializationError("not a parametric plan set document")
    try:
        regions = [
            _Region(
                lo=float(r["lo"]),
                hi=math.inf if r["hi"] is None else float(r["hi"]),
                plan=Plan(_node_from_dict(r["plan"])),
                cost_at_rep=float(r["cost_at_rep"]),
            )
            for r in doc["regions"]
        ]
    except (KeyError, ValueError, TypeError) as exc:
        raise SerializationError(f"bad parametric document: {exc}") from None
    return ParametricPlanSet(regions=regions)


# ----------------------------------------------------------------------
# Top-level helpers
# ----------------------------------------------------------------------

_DECODERS = {
    "plan": plan_from_dict,
    "distribution": distribution_from_dict,
    "choice_plan": choice_plan_from_dict,
    "parametric_plan_set": parametric_from_dict,
}


def dumps(obj) -> str:
    """Serialize a supported object to a JSON string."""
    if isinstance(obj, Plan):
        doc = plan_to_dict(obj)
    elif isinstance(obj, DiscreteDistribution):
        doc = distribution_to_dict(obj)
    elif isinstance(obj, ChoicePlan):
        doc = choice_plan_to_dict(obj)
    elif isinstance(obj, ParametricPlanSet):
        doc = parametric_to_dict(obj)
    else:
        raise SerializationError(
            f"cannot serialize objects of type {type(obj).__name__}"
        )
    return json.dumps(doc, sort_keys=True)


def loads(text: str):
    """Deserialize a JSON string produced by :func:`dumps`."""
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SerializationError(f"invalid JSON: {exc}") from None
    if not isinstance(doc, dict) or "kind" not in doc:
        raise SerializationError("document has no 'kind' tag")
    if not isinstance(doc["kind"], str):
        raise SerializationError(f"'kind' must be a string, got {doc['kind']!r}")
    decoder = _DECODERS.get(doc["kind"])
    if decoder is None:
        raise SerializationError(f"unknown document kind {doc['kind']!r}")
    return decoder(doc)
