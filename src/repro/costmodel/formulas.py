"""Join, sort and scan cost formulas (page I/Os), with breakpoints.

These are the paper's simplified Shapiro-style [Sha86] formulas (footnote
2 explicitly endorses simple formulas over "complex code").  All costs are
page I/Os; ``memory`` is the number of available buffer pages.

The formulas are deliberately *discontinuous step functions of memory* —
that discontinuity is the entire reason LEC and LSC plans diverge:

* sort-merge:  ``2(|A|+|B|)`` when ``M > sqrt(L)``, ``4(|A|+|B|)`` when
  ``sqrt(S) < M <= sqrt(L)``, ``6(|A|+|B|)`` when ``M <= sqrt(S)``
  (``L``/``S`` the larger/smaller input);
* Grace hash:  ``|A|+|B|`` when the smaller input fits in memory,
  ``2(|A|+|B|)`` when ``M >= sqrt(S)``, ``4(|A|+|B|)`` below that
  (recursive partitioning);
* nested loop: ``|A|+|B|`` when the smaller side fits (``M >= S+2``),
  ``|A| + |A|·|B|`` otherwise — exactly the paper's Section 3.6.2 form.

Each formula has a companion ``*_breakpoints`` function returning the
memory thresholds where the cost jumps.  The level-set-aware bucketing
strategy of Section 3.7 is built directly on these.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from ..plans.properties import AccessPath, JoinMethod

__all__ = [
    "nested_loop_cost",
    "block_nested_loop_cost",
    "sort_merge_cost",
    "sort_merge_cost_with_orders",
    "grace_hash_cost",
    "hybrid_hash_cost",
    "join_cost",
    "join_cost_vec",
    "join_breakpoints",
    "external_sort_cost",
    "external_sort_cost_vec",
    "sort_merge_cost_with_orders_vec",
    "sort_breakpoints",
    "scan_cost",
    "MIN_MEMORY_PAGES",
]

#: Below this many buffer pages no operator can run; costs are clamped as
#: if this minimum were available.
MIN_MEMORY_PAGES = 3.0


def _check(outer: float, inner: float, memory: float) -> float:
    if outer < 0 or inner < 0:
        raise ValueError("relation sizes must be non-negative")
    if memory <= 0:
        raise ValueError("memory must be positive")
    return max(memory, MIN_MEMORY_PAGES)


def nested_loop_cost(outer: float, inner: float, memory: float) -> float:
    """Paper nested-loop formula: ``|A|+|B|`` or ``|A| + |A|·|B|``.

    When the smaller relation (plus an input and an output buffer) fits in
    memory it is read once and kept resident; otherwise the inner relation
    is re-scanned for every outer page.
    """
    memory = _check(outer, inner, memory)
    smaller = min(outer, inner)
    if memory >= smaller + 2:
        return outer + inner
    return outer + outer * inner


def nested_loop_breakpoints(outer: float, inner: float) -> List[float]:
    """Memory thresholds where :func:`nested_loop_cost` jumps."""
    return [min(outer, inner) + 2.0]


def block_nested_loop_cost(outer: float, inner: float, memory: float) -> float:
    """Block nested loop: ``|A| + ceil(|A|/(M-2))·|B|``.

    The refinement method: outer is consumed in memory-sized blocks, so
    the cost decreases smoothly (step-wise) with memory instead of in one
    jump — a useful contrast case for the bucketing experiments.
    """
    memory = _check(outer, inner, memory)
    block = max(1.0, memory - 2.0)
    n_blocks = math.ceil(outer / block) if outer > 0 else 0
    return outer + n_blocks * inner


def block_nested_loop_breakpoints(outer: float, inner: float) -> List[float]:
    """Memory values where the number of outer blocks changes.

    There are ``O(sqrt(outer))`` distinct block counts that matter; we
    enumerate thresholds for block counts up to a small cap and dedupe.
    """
    if outer <= 0:
        return []
    points = set()
    k = 1
    while k * k <= outer + 1 and k <= 64:
        points.add(outer / k + 2.0)
        points.add(outer / max(1, math.ceil(outer / k)) + 2.0)
        k += 1
    return sorted(p for p in points if p > MIN_MEMORY_PAGES)


def sort_merge_cost(outer: float, inner: float, memory: float) -> float:
    """Paper sort-merge formula: 2, 4 or 6 passes worth of I/O."""
    return sort_merge_cost_with_orders(outer, inner, memory, False, False)


def sort_merge_cost_with_orders(
    outer: float,
    inner: float,
    memory: float,
    outer_presorted: bool,
    inner_presorted: bool,
) -> float:
    """Sort-merge cost with interesting-order credit.

    The paper's ``k·(|A|+|B|)`` (k = 2/4/6 by memory regime) charges each
    input ``k`` passes: one merge read plus ``k-1`` passes of sorting
    work.  An input already sorted on the join key skips its sorting
    passes and pays the merge read only, so with both inputs presorted
    the join degenerates to a pure merge, ``|A|+|B|``.
    """
    memory = _check(outer, inner, memory)
    larger = max(outer, inner)
    smaller = min(outer, inner)
    if memory > math.sqrt(larger):
        k = 2.0
    elif memory > math.sqrt(smaller):
        k = 4.0
    else:
        k = 6.0
    outer_mult = 1.0 if outer_presorted else k
    inner_mult = 1.0 if inner_presorted else k
    return outer_mult * outer + inner_mult * inner


def sort_merge_breakpoints(outer: float, inner: float) -> List[float]:
    """Memory thresholds where :func:`sort_merge_cost` jumps."""
    smaller, larger = sorted((outer, inner))
    return sorted({math.sqrt(smaller), math.sqrt(larger)})


def grace_hash_cost(outer: float, inner: float, memory: float) -> float:
    """Grace hash join: in-memory, two-pass, or recursive partitioning."""
    memory = _check(outer, inner, memory)
    total = outer + inner
    smaller = min(outer, inner)
    if memory >= smaller + 2:
        return total
    if memory >= math.sqrt(smaller):
        return 2.0 * total
    return 4.0 * total


def grace_hash_breakpoints(outer: float, inner: float) -> List[float]:
    """Memory thresholds where :func:`grace_hash_cost` jumps."""
    smaller = min(outer, inner)
    return sorted({math.sqrt(smaller), smaller + 2.0})


def hybrid_hash_cost(outer: float, inner: float, memory: float) -> float:
    """Hybrid hash join: Grace hash that keeps one partition resident.

    Standard approximation: of the smaller relation ``S``, a fraction
    ``min(1, M/S)`` stays in memory and never hits disk, so the
    re-read/re-write cost scales with the spilled fraction.
    """
    memory = _check(outer, inner, memory)
    total = outer + inner
    smaller = min(outer, inner)
    if smaller <= 0:
        return total
    if memory >= smaller + 2:
        return total
    if memory < math.sqrt(smaller):
        return 4.0 * total
    resident_fraction = min(1.0, memory / (smaller + 2.0))
    spilled = 1.0 - resident_fraction
    return total + spilled * total


def hybrid_hash_breakpoints(outer: float, inner: float) -> List[float]:
    """Region edges of :func:`hybrid_hash_cost` (the middle region is smooth)."""
    smaller = min(outer, inner)
    return sorted({math.sqrt(smaller), smaller + 2.0})


# ----------------------------------------------------------------------
# Vectorized variants
# ----------------------------------------------------------------------
#
# Array counterparts of the scalar formulas above, used by the batched
# expected-cost paths.  Each ``*_vec`` reproduces its scalar twin's
# arithmetic *operation for operation* (same multiply/add order, same
# ``sqrt``/comparison structure, branches as ``np.where`` masks), so an
# element of a vectorized grid is bit-identical to the scalar call on the
# same inputs.  Keep them in lockstep with the scalar versions.


def _check_vec(outer: np.ndarray, inner: np.ndarray, memory: np.ndarray) -> np.ndarray:
    if np.any(outer < 0) or np.any(inner < 0):
        raise ValueError("relation sizes must be non-negative")
    if np.any(memory <= 0):
        raise ValueError("memory must be positive")
    return np.maximum(memory, MIN_MEMORY_PAGES)


def nested_loop_cost_vec(
    outer: np.ndarray, inner: np.ndarray, memory: np.ndarray
) -> np.ndarray:
    """Vectorized :func:`nested_loop_cost`."""
    memory = _check_vec(outer, inner, memory)
    smaller = np.minimum(outer, inner)
    return np.where(memory >= smaller + 2, outer + inner, outer + outer * inner)


def block_nested_loop_cost_vec(
    outer: np.ndarray, inner: np.ndarray, memory: np.ndarray
) -> np.ndarray:
    """Vectorized :func:`block_nested_loop_cost`."""
    memory = _check_vec(outer, inner, memory)
    block = np.maximum(1.0, memory - 2.0)
    n_blocks = np.where(outer > 0, np.ceil(outer / block), 0.0)
    return outer + n_blocks * inner


def sort_merge_cost_with_orders_vec(
    outer: np.ndarray,
    inner: np.ndarray,
    memory: np.ndarray,
    outer_presorted: bool,
    inner_presorted: bool,
) -> np.ndarray:
    """Vectorized :func:`sort_merge_cost_with_orders`."""
    memory = _check_vec(outer, inner, memory)
    larger = np.maximum(outer, inner)
    smaller = np.minimum(outer, inner)
    k = np.where(
        memory > np.sqrt(larger),
        2.0,
        np.where(memory > np.sqrt(smaller), 4.0, 6.0),
    )
    outer_mult = 1.0 if outer_presorted else k
    inner_mult = 1.0 if inner_presorted else k
    return outer_mult * outer + inner_mult * inner


def sort_merge_cost_vec(
    outer: np.ndarray, inner: np.ndarray, memory: np.ndarray
) -> np.ndarray:
    """Vectorized :func:`sort_merge_cost`."""
    return sort_merge_cost_with_orders_vec(outer, inner, memory, False, False)


def grace_hash_cost_vec(
    outer: np.ndarray, inner: np.ndarray, memory: np.ndarray
) -> np.ndarray:
    """Vectorized :func:`grace_hash_cost`."""
    memory = _check_vec(outer, inner, memory)
    total = outer + inner
    smaller = np.minimum(outer, inner)
    return np.where(
        memory >= smaller + 2,
        total,
        np.where(memory >= np.sqrt(smaller), 2.0 * total, 4.0 * total),
    )


def hybrid_hash_cost_vec(
    outer: np.ndarray, inner: np.ndarray, memory: np.ndarray
) -> np.ndarray:
    """Vectorized :func:`hybrid_hash_cost`."""
    memory = _check_vec(outer, inner, memory)
    total = outer + inner
    smaller = np.minimum(outer, inner)
    resident_fraction = np.minimum(1.0, memory / (smaller + 2.0))
    spilled = 1.0 - resident_fraction
    partial = total + spilled * total
    out = np.where(memory < np.sqrt(smaller), 4.0 * total, partial)
    out = np.where(memory >= smaller + 2, total, out)
    return np.where(smaller <= 0, total, out)


def external_sort_cost_vec(pages: np.ndarray, memory: np.ndarray) -> np.ndarray:
    """Vectorized :func:`external_sort_cost`.

    The merge-pass count ``ceil(log(n_runs, fan_in))`` is evaluated with
    the scalar ``math.log`` per *unique* ``(n_runs, fan_in)`` pair: numpy's
    vectorized log is not guaranteed bit-identical to libm's, and a 1-ulp
    flip under the ceil at an integral ratio would change the pass count.
    The unique pairs are few (small integers), so this stays cheap.
    """
    pages = np.asarray(pages, dtype=float)
    memory = np.asarray(memory, dtype=float)
    if np.any(pages < 0):
        raise ValueError("pages must be non-negative")
    if np.any(memory <= 0):
        raise ValueError("memory must be positive")
    memory = np.maximum(memory, MIN_MEMORY_PAGES)
    pages_b, memory_b = np.broadcast_arrays(pages, memory)
    n_runs = np.ceil(pages_b / memory_b)
    fan_in = np.maximum(2.0, np.floor(memory_b) - 1.0)
    merge_passes = np.zeros(pages_b.shape)
    multi = n_runs > 1.0
    if np.any(multi):
        nr = n_runs[multi]
        fi = fan_in[multi]
        lut = {
            (r, f): float(math.ceil(math.log(r, f)))
            for r, f in {*zip(nr.tolist(), fi.tolist())}
        }
        merge_passes[multi] = [lut[pair] for pair in zip(nr.tolist(), fi.tolist())]
    out = 2.0 * pages_b * (1.0 + merge_passes)
    out = np.where(pages_b <= memory_b, pages_b, out)
    return np.where(pages_b == 0, 0.0, out)


_JOIN_COST = {
    JoinMethod.NESTED_LOOP: nested_loop_cost,
    JoinMethod.BLOCK_NESTED_LOOP: block_nested_loop_cost,
    JoinMethod.SORT_MERGE: sort_merge_cost,
    JoinMethod.GRACE_HASH: grace_hash_cost,
    JoinMethod.HYBRID_HASH: hybrid_hash_cost,
}

_JOIN_COST_VEC = {
    JoinMethod.NESTED_LOOP: nested_loop_cost_vec,
    JoinMethod.BLOCK_NESTED_LOOP: block_nested_loop_cost_vec,
    JoinMethod.SORT_MERGE: sort_merge_cost_vec,
    JoinMethod.GRACE_HASH: grace_hash_cost_vec,
    JoinMethod.HYBRID_HASH: hybrid_hash_cost_vec,
}

_JOIN_BREAKPOINTS = {
    JoinMethod.NESTED_LOOP: nested_loop_breakpoints,
    JoinMethod.BLOCK_NESTED_LOOP: block_nested_loop_breakpoints,
    JoinMethod.SORT_MERGE: sort_merge_breakpoints,
    JoinMethod.GRACE_HASH: grace_hash_breakpoints,
    JoinMethod.HYBRID_HASH: hybrid_hash_breakpoints,
}


def join_cost(
    method: JoinMethod, outer: float, inner: float, memory: float
) -> float:
    """Dispatch to the cost formula for ``method``."""
    return _JOIN_COST[method](outer, inner, memory)


def join_cost_vec(
    method: JoinMethod, outer: np.ndarray, inner: np.ndarray, memory: np.ndarray
) -> np.ndarray:
    """Dispatch to the vectorized cost formula for ``method``."""
    return _JOIN_COST_VEC[method](outer, inner, memory)


def join_breakpoints(method: JoinMethod, outer: float, inner: float) -> List[float]:
    """Dispatch to the breakpoint list for ``method``."""
    return _JOIN_BREAKPOINTS[method](outer, inner)


def external_sort_cost(pages: float, memory: float) -> float:
    """External merge sort: ``2 · pages · n_passes`` page I/Os.

    One pass forms sorted runs of ``memory`` pages; each merge pass has
    fan-in ``memory - 1``.  A relation that fits in memory costs a single
    read (``pages``) — it is sorted in place and streamed out.
    """
    if pages < 0:
        raise ValueError("pages must be non-negative")
    if memory <= 0:
        raise ValueError("memory must be positive")
    memory = max(memory, MIN_MEMORY_PAGES)
    if pages == 0:
        return 0.0
    if pages <= memory:
        return pages
    n_runs = math.ceil(pages / memory)
    fan_in = max(2, int(memory) - 1)
    merge_passes = math.ceil(math.log(n_runs, fan_in)) if n_runs > 1 else 0
    return 2.0 * pages * (1 + merge_passes)


def sort_breakpoints(pages: float) -> List[float]:
    """Memory thresholds where :func:`external_sort_cost` changes regime.

    Exact enumeration of all pass-count boundaries is unbounded; we return
    the fits-in-memory edge and the k-th-root thresholds where the number
    of merge passes changes, which dominate in practice.
    """
    if pages <= 1:
        return []
    points = {float(pages)}
    for passes in range(1, 8):
        points.add(pages ** (1.0 / (passes + 1)) + 1.0)
    return sorted(p for p in points if p > MIN_MEMORY_PAGES)


def scan_cost(
    access: AccessPath,
    base_pages: float,
    selectivity: float = 1.0,
    rows: float = 0.0,
    index_height: int = 2,
    clustered: bool = True,
) -> float:
    """Cost of producing a (possibly filtered) base-relation stream.

    Unfiltered full scans cost nothing here: the consuming join's formula
    already charges for reading its inputs.  A *filtering* scan must
    materialise its reduced output, so it pays the read plus the write of
    the filtered pages.  Index scans pay the index descent plus the
    matching data pages (all rows' pages when unclustered, the selected
    fraction when clustered).
    """
    if not 0.0 <= selectivity <= 1.0:
        raise ValueError("selectivity must be in [0, 1]")
    if base_pages < 0:
        raise ValueError("base_pages must be non-negative")
    if access is AccessPath.FULL_SCAN:
        if selectivity >= 1.0:
            return 0.0
        out_pages = max(1.0, base_pages * selectivity)
        return base_pages + out_pages
    # Index scan.
    matching_rows = rows * selectivity
    if clustered:
        data_pages = max(1.0, base_pages * selectivity) if selectivity > 0 else 0.0
    else:
        data_pages = min(matching_rows, base_pages) if selectivity > 0 else 0.0
    out_pages = max(1.0, base_pages * selectivity) if selectivity < 1.0 else 0.0
    return index_height + data_pages + out_pages
