"""The cost model Φ(plan, v): costing whole plans under parameter settings.

:class:`CostModel` evaluates the paper's cost function Φ for a plan and a
parameter setting, under this library's execution model:

* every intermediate result (join output, filtered scan output) is
  materialised; a join's formula charges for reading its inputs, and the
  *consumer* of a join's output pays one write for materialising it —
  unless the consumer is a nested-loop join declared *pipelined*
  (``pipelined_methods``), whose outer input streams straight from its
  producer (the Section 4 pipelining extension);
* execution proceeds in *phases*, one per join (Section 3.5): a node's
  work is charged to its join's phase, an enforcer sort rides with the
  final phase;
* memory is either a single value (static) or one value per phase
  (dynamic).

The model counts cost-formula evaluations (``eval_count``) so experiments
can verify the paper's overhead claims (LEC optimization ≈ ``b ×`` one
LSC invocation) without relying on wall-clock noise.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..core.distributions import DiscreteDistribution
from ..core.markov import MarkovParameter
from ..plans.nodes import Join, Plan, PlanNode, Project, Scan, Sort
from ..plans.nodes import Union as UnionNode
from ..plans.properties import AccessPath, JoinMethod
from ..plans.query import JoinQuery
from . import formulas
from .estimates import node_size

__all__ = ["CostModel", "DEFAULT_METHODS"]

#: The paper's method set: the three classic algorithms.
DEFAULT_METHODS: Tuple[JoinMethod, ...] = (
    JoinMethod.NESTED_LOOP,
    JoinMethod.SORT_MERGE,
    JoinMethod.GRACE_HASH,
)


class CostModel:
    """Evaluates Φ(plan, v) and its building blocks.

    Parameters
    ----------
    methods:
        Join methods the optimizer may choose from.  Defaults to the
        paper's trio (NL, SM, GH); pass the extended set to enable the
        BNL/HH refinements.
    count_evaluations:
        When True (default) every join/sort formula evaluation increments
        :attr:`eval_count` — the optimizer-overhead metric of E4/E7.
    """

    def __init__(
        self,
        methods: Sequence[JoinMethod] = DEFAULT_METHODS,
        count_evaluations: bool = True,
        pipelined_methods: Sequence[JoinMethod] = (),
    ):
        if not methods:
            raise ValueError("at least one join method is required")
        self.methods: Tuple[JoinMethod, ...] = tuple(methods)
        self._count = count_evaluations
        self.eval_count = 0
        allowed = {JoinMethod.NESTED_LOOP, JoinMethod.BLOCK_NESTED_LOOP}
        bad = set(pipelined_methods) - allowed
        if bad:
            raise ValueError(
                "only nested-loop joins can pipeline their outer input, "
                f"got {sorted(m.value for m in bad)}"
            )
        self.pipelined_methods: frozenset = frozenset(pipelined_methods)

    def reset_counters(self) -> None:
        """Zero the formula-evaluation counter."""
        self.eval_count = 0

    def note_evaluations(self, n: int) -> None:
        """Advance :attr:`eval_count` by ``n`` externally computed formulas.

        The parallel per-level evaluator runs the *pure* ``formulas``
        kernels in worker threads/processes (a shared ``+=`` from workers
        would race, and process-side increments would be lost) and
        charges the count here from the coordinating thread — totals
        remain exactly what the sequential ``*_many`` calls would have
        produced.
        """
        if self._count:
            self.eval_count += int(n)

    # ------------------------------------------------------------------
    # Primitive costs
    # ------------------------------------------------------------------

    def join_cost(
        self, method: JoinMethod, outer: float, inner: float, memory: float
    ) -> float:
        """Cost of one join (reading both inputs; no output write)."""
        if self._count:
            self.eval_count += 1
        return formulas.join_cost(method, outer, inner, memory)

    def sort_merge_cost_ordered(
        self,
        outer: float,
        inner: float,
        memory: float,
        outer_presorted: bool,
        inner_presorted: bool,
    ) -> float:
        """Sort-merge cost with interesting-order credit for sorted inputs."""
        if self._count:
            self.eval_count += 1
        return formulas.sort_merge_cost_with_orders(
            outer, inner, memory, outer_presorted, inner_presorted
        )

    def sort_cost(self, pages: float, memory: float) -> float:
        """Cost of an enforcer sort over ``pages``."""
        if self._count:
            self.eval_count += 1
        return formulas.external_sort_cost(pages, memory)

    # ------------------------------------------------------------------
    # Batched primitive costs
    # ------------------------------------------------------------------
    #
    # Array counterparts of the primitives above.  Each element of the
    # result is bit-identical to the corresponding scalar call, and
    # ``eval_count`` advances by the number of grid points — one per
    # formula evaluation, exactly as if the scalar method had been called
    # in a loop — so the E4/E7 overhead accounting is unchanged.

    def join_cost_many(
        self,
        method: JoinMethod,
        outer: np.ndarray,
        inner: np.ndarray,
        memory: np.ndarray,
    ) -> np.ndarray:
        """Vectorized :meth:`join_cost` over aligned parameter arrays."""
        out = formulas.join_cost_vec(method, outer, inner, memory)
        if self._count:
            self.eval_count += out.size
        return out

    def sort_merge_cost_ordered_many(
        self,
        outer: np.ndarray,
        inner: np.ndarray,
        memory: np.ndarray,
        outer_presorted: bool,
        inner_presorted: bool,
    ) -> np.ndarray:
        """Vectorized :meth:`sort_merge_cost_ordered`."""
        out = formulas.sort_merge_cost_with_orders_vec(
            outer, inner, memory, outer_presorted, inner_presorted
        )
        if self._count:
            self.eval_count += out.size
        return out

    def sort_cost_many(self, pages: np.ndarray, memory: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`sort_cost`."""
        out = formulas.external_sort_cost_vec(pages, memory)
        if self._count:
            self.eval_count += out.size
        return out

    def scan_node_cost(self, scan: Scan, query: JoinQuery) -> float:
        """Memory-independent cost of a scan leaf (full or index scan)."""
        spec = query.relation(scan.table)
        base_rows = query.rows_of(scan.table) / max(spec.filter_selectivity, 1e-12)
        if scan.access is AccessPath.INDEX_SCAN:
            if spec.index is None:
                raise ValueError(
                    f"plan uses an index scan on {scan.table!r} but the "
                    "relation has no index"
                )
            return formulas.scan_cost(
                AccessPath.INDEX_SCAN,
                base_pages=spec.pages,
                selectivity=spec.filter_selectivity,
                rows=base_rows,
                index_height=spec.index.height,
                clustered=spec.index.clustered,
            )
        return formulas.scan_cost(
            AccessPath.FULL_SCAN,
            base_pages=spec.pages,
            selectivity=spec.filter_selectivity,
            rows=base_rows,
        )

    def join_breakpoints(
        self, method: JoinMethod, outer: float, inner: float
    ) -> List[float]:
        """Memory thresholds where this join's cost formula jumps."""
        return formulas.join_breakpoints(method, outer, inner)

    # ------------------------------------------------------------------
    # Whole-plan costing
    # ------------------------------------------------------------------

    def plan_cost(self, plan: Plan, query: JoinQuery, memory: float) -> float:
        """Φ(plan, v) with static memory ``v = memory``."""
        return self._cost_with_memory(plan, query, lambda phase: memory)

    def plan_cost_dynamic(
        self, plan: Plan, query: JoinQuery, memory_by_phase: Sequence[float]
    ) -> float:
        """Φ(plan, v) where ``v`` is one memory value per join phase.

        ``memory_by_phase`` must have at least ``plan.n_phases`` entries.
        """
        seq = list(memory_by_phase)
        if len(seq) < plan.n_phases:
            raise ValueError(
                f"need {plan.n_phases} phase memories, got {len(seq)}"
            )
        return self._cost_with_memory(plan, query, lambda phase: seq[phase])

    def phase_cost(
        self, plan: Plan, query: JoinQuery, phase: int, memory: float
    ) -> float:
        """Cost charged to a single execution phase at the given memory."""
        total = 0.0
        for node, node_phase in self._phases(plan):
            if node_phase != phase:
                continue
            total += self._node_cost(node, plan, query, memory)
        return total

    # ------------------------------------------------------------------
    # Expected costs (memory as the only uncertain parameter)
    # ------------------------------------------------------------------

    def plan_expected_cost(
        self, plan: Plan, query: JoinQuery, memory: DiscreteDistribution
    ) -> float:
        """``E[Φ(plan, M)]`` for static random memory ``M``."""
        return memory.expectation(lambda m: self.plan_cost(plan, query, m))

    def plan_expected_cost_markov(
        self, plan: Plan, query: JoinQuery, chain: MarkovParameter
    ) -> float:
        """``E[Σ_k Φ_k(plan, M_k)]`` under a Markov memory process.

        Uses only the per-phase marginals: expectation distributes over
        the sum of phase costs, so no sequence enumeration is needed
        (the insight behind Theorem 3.4).
        """
        if self.pipelined_methods:
            raise ValueError(
                "pipelined joins merge execution phases; the per-phase "
                "Markov objective does not support them"
            )
        if any(isinstance(n, UnionNode) for n in plan.nodes()):
            raise ValueError(
                "union plans have no canonical phase order; the per-phase "
                "Markov objective does not support them"
            )
        total = 0.0
        for phase in range(plan.n_phases):
            marginal = chain.marginal(phase)
            total += marginal.expectation(
                lambda m, _ph=phase: self.phase_cost(plan, query, _ph, m)
            )
        return total

    def plan_expected_cost_bruteforce(
        self, plan: Plan, query: JoinQuery, chain: MarkovParameter
    ) -> float:
        """Expected cost by enumerating all memory sequences (verification).

        Exponential in the number of phases; used by tests/experiments to
        confirm :meth:`plan_expected_cost_markov`.
        """
        total = 0.0
        for seq, prob in chain.sequences(plan.n_phases):
            total += prob * self.plan_cost_dynamic(plan, query, list(seq))
        return total

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _phases(self, plan: Plan) -> List[Tuple[PlanNode, int]]:
        joins = plan.joins()
        join_phase = {id(j): i for i, j in enumerate(joins)}
        out: List[Tuple[PlanNode, int]] = []
        # Walk with explicit parent tracking so each node is charged to the
        # nearest enclosing join's phase.
        def visit(node: PlanNode, enclosing: int) -> None:
            if isinstance(node, Join):
                my_phase = join_phase[id(node)]
            else:
                my_phase = enclosing
            for child in node.children:
                visit(child, my_phase)
            out.append((node, my_phase))

        visit(plan.root, max(0, len(joins) - 1))
        return out

    def _node_cost(
        self, node: PlanNode, plan: Plan, query: JoinQuery, memory: float
    ) -> float:
        if isinstance(node, Scan):
            return self.scan_node_cost(node, query)
        if isinstance(node, Project):
            return 0.0  # projection streams: pure width reduction
        if isinstance(node, UnionNode):
            return self._union_cost(node, query, memory)
        if isinstance(node, Sort):
            child_pages = node_size(node.child, query).pages
            cost = self.sort_cost(child_pages, memory)
            if isinstance(_strip_projects(node.child), Join):
                cost += child_pages  # the sort re-reads a materialised temp
            return cost
        assert isinstance(node, Join)
        left = node_size(node.left, query)
        right = node_size(node.right, query)
        if node.method is JoinMethod.SORT_MERGE:
            target = node.output_order_label
            cost = self.sort_merge_cost_ordered(
                left.pages,
                right.pages,
                memory,
                outer_presorted=node.left.order == target,
                inner_presorted=node.right.order == target,
            )
        else:
            cost = self.join_cost(node.method, left.pages, right.pages, memory)
        cost += self._child_write_cost(node, query)
        return cost

    def _child_write_cost(self, node: Join, query: JoinQuery) -> float:
        """Materialisation writes this join pays for its join-children.

        The outer (left) input of a pipelined nested-loop join streams
        from its producer and is never written.  Projections are
        transparent here: a projected join output is still materialised
        (at its projected width, via ``node_size``).
        """
        total = 0.0
        pipeline_left = node.method in self.pipelined_methods
        if isinstance(_strip_projects(node.left), Join) and not pipeline_left:
            total += node_size(node.left, query).pages
        if isinstance(_strip_projects(node.right), Join):
            total += node_size(node.right, query).pages
        return total

    def _union_cost(self, node: UnionNode, query: JoinQuery, memory: float) -> float:
        """Cost charged at a union node over its already-costed arms.

        UNION ALL streams: arms feed the output directly, the node is
        free, and no arm output is materialised.  DISTINCT must
        de-duplicate: every arm whose (projection-stripped) root is a
        join is written out at its projected width, then one external
        sort runs over the combined pages.
        """
        if not node.distinct:
            return 0.0
        total = 0.0
        total_pages = 0.0
        for child in node.inputs:
            pages = node_size(child, query).pages
            if isinstance(_strip_projects(child), (Join, Sort)):
                total += pages  # materialise the arm before deduplication
            total_pages += pages
        return total + self.sort_cost(total_pages, memory)

    def _cost_with_memory(self, plan: Plan, query: JoinQuery, memory_at) -> float:
        total = 0.0
        for node, phase in self._phases(plan):
            total += self._node_cost(node, plan, query, memory_at(phase))
        return total


def _strip_projects(node: PlanNode) -> PlanNode:
    """Peel streaming projection wrappers off a node."""
    while isinstance(node, Project):
        node = node.child
    return node
