"""Cost model: join/sort/scan formulas, size estimation, plan costing."""

from .estimates import (
    SizeEstimate,
    annotate_sizes,
    node_size,
    subset_size,
    subset_size_distribution,
)
from .formulas import (
    MIN_MEMORY_PAGES,
    external_sort_cost,
    grace_hash_cost,
    join_breakpoints,
    join_cost,
    nested_loop_cost,
    scan_cost,
    sort_breakpoints,
    sort_merge_cost,
)
from .model import DEFAULT_METHODS, CostModel

__all__ = [
    "CostModel",
    "DEFAULT_METHODS",
    "SizeEstimate",
    "subset_size",
    "subset_size_distribution",
    "node_size",
    "annotate_sizes",
    "join_cost",
    "join_breakpoints",
    "nested_loop_cost",
    "sort_merge_cost",
    "grace_hash_cost",
    "external_sort_cost",
    "sort_breakpoints",
    "scan_cost",
    "MIN_MEMORY_PAGES",
]
