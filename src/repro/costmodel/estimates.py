"""Result-size estimation for plan nodes and relation subsets.

Under the textbook independence assumptions, the size of a join result
depends only on the *set* of relations joined (and the predicates applied
between them), not on the join order or methods — this is observation 3
behind the System-R dynamic program.  We therefore estimate sizes per
relation subset and look plan-node sizes up via ``node.relations()``.

Two views are provided, mirroring LSC vs. LEC inputs:

* :func:`subset_size` — point estimate ``(rows, pages)``;
* :func:`subset_size_distribution` — a
  :class:`~repro.core.distributions.DiscreteDistribution` over pages,
  propagated through the classic ``|A ⋈ B| = |A|·|B|·σ`` identity with
  independent inputs and rebucketing (Section 3.6.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet

from typing import Tuple

from ..core.distributions import (
    DiscreteDistribution,
    point_mass,
)
from ..plans.nodes import Plan, PlanNode, Project
from ..plans.nodes import Union as UnionNode
from ..plans.query import JoinQuery
from ..plans.spju import UnionQuery

__all__ = [
    "SizeEstimate",
    "subset_size",
    "subset_size_bounds",
    "subset_size_distribution",
    "project_pages",
    "annotate_sizes",
    "node_size",
]

#: Relative slack when clamping a propagated distribution to its analytic
#: bounds: the bounds multiply the same factors in a different order than
#: the fold, so exact comparison would clip float-rounding ghosts.
_BOUND_SLACK = 1e-9


class _PlainDistributionOps:
    """Uncached distribution operations (the default ``ops`` provider).

    :class:`~repro.core.context.OptimizationContext` implements the same
    three methods with value-hash memoization; passing a context as
    ``ops`` makes size propagation share work across subsets and calls.
    """

    @staticmethod
    def product(a: DiscreteDistribution, b: DiscreteDistribution) -> DiscreteDistribution:
        return a.multiply(b)

    @staticmethod
    def rebucket(
        dist: DiscreteDistribution, n_buckets: int, strategy: str = "equidepth"
    ) -> DiscreteDistribution:
        return dist.rebucket(n_buckets, strategy=strategy)


_PLAIN_OPS = _PlainDistributionOps()


@dataclass(frozen=True)
class SizeEstimate:
    """Point estimate of an intermediate result's size."""

    rows: float
    pages: float


def subset_size(rels: FrozenSet[str], query: JoinQuery) -> SizeEstimate:
    """Point size estimate for the join over ``rels``.

    Rows multiply; every predicate internal to the subset contributes its
    selectivity once.  A two-relation subset whose (single) predicate
    carries ``result_pages_override`` uses the override verbatim — this is
    how scenario reconstructions pin known result sizes.
    """
    rels = frozenset(rels)
    if not rels:
        raise ValueError("subset must be non-empty")
    rows = 1.0
    for name in rels:
        rows *= query.rows_of(name)
    preds = query.predicates_within(rels)
    if len(rels) == 2 and len(preds) == 1 and preds[0].result_pages_override is not None:
        pages = float(preds[0].result_pages_override)
        return SizeEstimate(rows=pages * query.rows_per_page, pages=pages)
    for p in preds:
        rows *= p.selectivity
    if len(rels) == 1:
        name = next(iter(rels))
        return SizeEstimate(rows=rows, pages=query.pages_of(name))
    pages = max(1.0, rows / query.rows_per_page)
    return SizeEstimate(rows=rows, pages=pages)


def project_pages(pages: float, ratio: float) -> float:
    """Pages of a projected result: width shrinks, rows don't."""
    return max(1.0, pages * ratio)


def subset_size_bounds(
    rels: FrozenSet[str], query: JoinQuery
) -> Tuple[float, float]:
    """Analytic ``(lo, hi)`` page bounds for the join over ``rels``.

    The Chen & Schneider-style bound for SPJ(U) intermediates: with every
    uncertain factor (relation sizes, selectivities) confined to its
    support range, the result's pages lie within the product of the
    factor extremes.  Two uses downstream:

    * **clamping** C6-rebucketed size distributions (rebucketing is
      mean-preserving but can, in principle, smear mass outside the
      attainable range — the clip keeps arm/union distributions sound);
    * **pruning** the enlarged (bushy) DP: every join method reads both
      inputs at least once, so ``lo(L) + lo(R)`` lower-bounds any join
      step over the partition ``(L, R)``.
    """
    rels = frozenset(rels)
    if not rels:
        raise ValueError("subset must be non-empty")
    if len(rels) == 1:
        spec = query.relation(next(iter(rels)))
        dist = spec.pages_distribution()
        lo, hi = dist.min(), dist.max()
        if spec.filter_selectivity < 1.0:
            lo *= spec.filter_selectivity
            hi *= spec.filter_selectivity
        return max(1.0, lo), max(1.0, hi)
    preds = query.predicates_within(rels)
    if len(rels) == 2 and len(preds) == 1 and preds[0].result_pages_override is not None:
        pages = float(preds[0].result_pages_override)
        return pages, pages
    lo = hi = float(query.rows_per_page) ** (len(rels) - 1)
    for name in sorted(rels):
        dist = query.relation(name).pages_distribution()
        lo *= dist.min()
        hi *= dist.max()
    for p in preds:
        dist = p.selectivity_distribution()
        lo *= dist.min()
        hi *= dist.max()
    for name in rels:
        fsel = query.relation(name).filter_selectivity
        if fsel < 1.0:
            lo *= fsel
            hi *= fsel
    return max(1.0, lo), max(1.0, hi)


def subset_size_distribution(
    rels: FrozenSet[str],
    query: JoinQuery,
    max_buckets: int = 16,
    ops=None,
) -> DiscreteDistribution:
    """Distribution over the page count of the join over ``rels``.

    Relation sizes and predicate selectivities are treated as mutually
    independent (the paper's default assumption); the exact product
    distribution is formed and then rebucketed to at most ``max_buckets``
    support points, preserving the mean.

    ``ops`` supplies the distribution product/rebucket primitives; pass
    an :class:`~repro.core.context.OptimizationContext` to memoize the
    intermediate folds across subsets and optimizer invocations.
    """
    if ops is None:
        ops = _PLAIN_OPS
    rels = frozenset(rels)
    if not rels:
        raise ValueError("subset must be non-empty")
    if len(rels) == 1:
        name = next(iter(rels))
        spec = query.relation(name)
        dist = spec.pages_distribution()
        if spec.filter_selectivity < 1.0:
            dist = dist.scale(spec.filter_selectivity).clip(lo=1.0)
        return ops.rebucket(dist, max_buckets)

    preds = query.predicates_within(rels)
    if len(rels) == 2 and len(preds) == 1 and preds[0].result_pages_override is not None:
        return point_mass(float(preds[0].result_pages_override))

    # pages(S) = Π pages_i · rpp^(k-1) · Π σ_p   (rows = pages·rpp each).
    factors = [query.relation(name).pages_distribution() for name in sorted(rels)]
    factors += [p.selectivity_distribution() for p in preds]
    rpp_power = float(query.rows_per_page) ** (len(rels) - 1)

    # Fold pairwise with intermediate rebucketing to keep the support small.
    acc = factors[0]
    for nxt in factors[1:]:
        acc = ops.rebucket(ops.product(acc, nxt), max_buckets)
    acc = acc.scale(rpp_power)
    # Account for local filters on the member relations.
    for name in rels:
        fsel = query.relation(name).filter_selectivity
        if fsel < 1.0:
            acc = acc.scale(fsel)
    # Clamp to the analytic Chen & Schneider bounds: intermediate
    # rebucketing must not leave the attainable range (with float slack,
    # so an in-range support is passed through bit-identically).
    lo_b, hi_b = subset_size_bounds(rels, query)
    acc = acc.clip(lo=lo_b * (1.0 - _BOUND_SLACK), hi=hi_b * (1.0 + _BOUND_SLACK))
    return ops.rebucket(acc.clip(lo=1.0), max_buckets)


def _projection_ratio_for(node: Project, query: JoinQuery) -> float:
    """The projection ratio governing ``node``'s output width."""
    if isinstance(query, UnionQuery):
        return query.projection_ratio_of(node.relations())
    return getattr(query, "projection_ratio", 1.0)


def node_size(node: PlanNode, query: JoinQuery) -> SizeEstimate:
    """Point size estimate of a plan node's output.

    ``Project`` keeps the child's rows but narrows pages by the owning
    block's projection ratio; ``Union`` sums its arms (an upper bound
    under DISTINCT, exact under ALL); everything else is the classic
    subset estimate.
    """
    if isinstance(node, Project):
        child = node_size(node.child, query)
        ratio = _projection_ratio_for(node, query)
        return SizeEstimate(
            rows=child.rows, pages=project_pages(child.pages, ratio)
        )
    if isinstance(node, UnionNode):
        sizes = [node_size(child, query) for child in node.inputs]
        return SizeEstimate(
            rows=sum(s.rows for s in sizes),
            pages=sum(s.pages for s in sizes),
        )
    return subset_size(node.relations(), query)


def annotate_sizes(plan: Plan, query: JoinQuery) -> Dict[PlanNode, SizeEstimate]:
    """Size estimates for every node of ``plan`` (keyed by node value)."""
    return {node: node_size(node, query) for node in plan.nodes()}
