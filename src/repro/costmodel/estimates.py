"""Result-size estimation for plan nodes and relation subsets.

Under the textbook independence assumptions, the size of a join result
depends only on the *set* of relations joined (and the predicates applied
between them), not on the join order or methods — this is observation 3
behind the System-R dynamic program.  We therefore estimate sizes per
relation subset and look plan-node sizes up via ``node.relations()``.

Two views are provided, mirroring LSC vs. LEC inputs:

* :func:`subset_size` — point estimate ``(rows, pages)``;
* :func:`subset_size_distribution` — a
  :class:`~repro.core.distributions.DiscreteDistribution` over pages,
  propagated through the classic ``|A ⋈ B| = |A|·|B|·σ`` identity with
  independent inputs and rebucketing (Section 3.6.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet

from ..core.distributions import (
    DiscreteDistribution,
    independent_product,
    point_mass,
)
from ..plans.nodes import Join, Plan, PlanNode
from ..plans.query import JoinQuery

__all__ = [
    "SizeEstimate",
    "subset_size",
    "subset_size_distribution",
    "annotate_sizes",
    "node_size",
]


class _PlainDistributionOps:
    """Uncached distribution operations (the default ``ops`` provider).

    :class:`~repro.core.context.OptimizationContext` implements the same
    three methods with value-hash memoization; passing a context as
    ``ops`` makes size propagation share work across subsets and calls.
    """

    @staticmethod
    def product(a: DiscreteDistribution, b: DiscreteDistribution) -> DiscreteDistribution:
        return independent_product(lambda x, y: x * y, a, b)

    @staticmethod
    def rebucket(
        dist: DiscreteDistribution, n_buckets: int, strategy: str = "equidepth"
    ) -> DiscreteDistribution:
        return dist.rebucket(n_buckets, strategy=strategy)


_PLAIN_OPS = _PlainDistributionOps()


@dataclass(frozen=True)
class SizeEstimate:
    """Point estimate of an intermediate result's size."""

    rows: float
    pages: float


def subset_size(rels: FrozenSet[str], query: JoinQuery) -> SizeEstimate:
    """Point size estimate for the join over ``rels``.

    Rows multiply; every predicate internal to the subset contributes its
    selectivity once.  A two-relation subset whose (single) predicate
    carries ``result_pages_override`` uses the override verbatim — this is
    how scenario reconstructions pin known result sizes.
    """
    rels = frozenset(rels)
    if not rels:
        raise ValueError("subset must be non-empty")
    rows = 1.0
    for name in rels:
        rows *= query.rows_of(name)
    preds = query.predicates_within(rels)
    if len(rels) == 2 and len(preds) == 1 and preds[0].result_pages_override is not None:
        pages = float(preds[0].result_pages_override)
        return SizeEstimate(rows=pages * query.rows_per_page, pages=pages)
    for p in preds:
        rows *= p.selectivity
    if len(rels) == 1:
        name = next(iter(rels))
        return SizeEstimate(rows=rows, pages=query.pages_of(name))
    pages = max(1.0, rows / query.rows_per_page)
    return SizeEstimate(rows=rows, pages=pages)


def subset_size_distribution(
    rels: FrozenSet[str],
    query: JoinQuery,
    max_buckets: int = 16,
    ops=None,
) -> DiscreteDistribution:
    """Distribution over the page count of the join over ``rels``.

    Relation sizes and predicate selectivities are treated as mutually
    independent (the paper's default assumption); the exact product
    distribution is formed and then rebucketed to at most ``max_buckets``
    support points, preserving the mean.

    ``ops`` supplies the distribution product/rebucket primitives; pass
    an :class:`~repro.core.context.OptimizationContext` to memoize the
    intermediate folds across subsets and optimizer invocations.
    """
    if ops is None:
        ops = _PLAIN_OPS
    rels = frozenset(rels)
    if not rels:
        raise ValueError("subset must be non-empty")
    if len(rels) == 1:
        name = next(iter(rels))
        spec = query.relation(name)
        dist = spec.pages_distribution()
        if spec.filter_selectivity < 1.0:
            dist = dist.scale(spec.filter_selectivity).clip(lo=1.0)
        return ops.rebucket(dist, max_buckets)

    preds = query.predicates_within(rels)
    if len(rels) == 2 and len(preds) == 1 and preds[0].result_pages_override is not None:
        return point_mass(float(preds[0].result_pages_override))

    # pages(S) = Π pages_i · rpp^(k-1) · Π σ_p   (rows = pages·rpp each).
    factors = [query.relation(name).pages_distribution() for name in sorted(rels)]
    factors += [p.selectivity_distribution() for p in preds]
    rpp_power = float(query.rows_per_page) ** (len(rels) - 1)

    # Fold pairwise with intermediate rebucketing to keep the support small.
    acc = factors[0]
    for nxt in factors[1:]:
        acc = ops.rebucket(ops.product(acc, nxt), max_buckets)
    acc = acc.scale(rpp_power)
    # Account for local filters on the member relations.
    for name in rels:
        fsel = query.relation(name).filter_selectivity
        if fsel < 1.0:
            acc = acc.scale(fsel)
    return ops.rebucket(acc.clip(lo=1.0), max_buckets)


def node_size(node: PlanNode, query: JoinQuery) -> SizeEstimate:
    """Point size estimate of a plan node's output."""
    return subset_size(node.relations(), query)


def annotate_sizes(plan: Plan, query: JoinQuery) -> Dict[PlanNode, SizeEstimate]:
    """Size estimates for every node of ``plan`` (keyed by node value)."""
    return {node: node_size(node, query) for node in plan.nodes()}
