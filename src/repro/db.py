"""A high-level facade: the library as a tiny, adoptable database.

:class:`Database` wires the substrates together behind four verbs —
load data, declare a join query, optimize it under an uncertain
environment, execute the chosen plan on the tuple engine:

    >>> db = Database(rows_per_page=25)
    >>> db.create_table("dept", ["id", "name_len"],
    ...                 [(i, i % 7) for i in range(40)])
    >>> db.generate_table("emp", 2000, [
    ...     ColumnSpec("id", "serial"), ColumnSpec("dept", "fk", domain=40)])
    >>> q = db.join_query(["emp", "dept"], {("emp", "dept"): ("dept", "id")})
    >>> result = db.optimize(q, two_point(50, 0.7, 10))
    >>> rows, io = db.execute(result.plan, memory_pages=30)

Optimization dispatches on the environment's type: a float runs the LSC
baseline, a :class:`DiscreteDistribution` runs Algorithm C (or D when the
query carries distributional sizes/selectivities), a
:class:`MarkovParameter` runs the dynamic variant, and a
:class:`DiscreteBayesNet` runs the dependence-aware optimizer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from .catalog.schema import Catalog, Column, Table
from .catalog.feedback import SelectivityFeedback
from .catalog.statistics import StatisticsCatalog
from .core.algorithm_c import optimize_algorithm_c
from .core.algorithm_d import optimize_algorithm_d
from .core.bayesnet import DiscreteBayesNet
from .core.distributions import DiscreteDistribution
from .core.lsc import optimize_lsc
from .core.markov import MarkovParameter
from .costmodel.model import CostModel
from .engine.buffer import BufferPool, IOCounters
from .engine.executor import ExecutionContext, execute_plan
from .engine.pages import PagedFile, Schema, StorageManager
from .optimizer.dependent import optimize_dependent
from .optimizer.result import OptimizationResult
from .plans.nodes import Plan
from .plans.query import JoinQuery
from .workloads.datagen import ColumnSpec, generate_table

__all__ = ["Database", "QueryResult"]

Environment = Union[
    float, DiscreteDistribution, MarkovParameter, DiscreteBayesNet
]


@dataclass
class QueryResult:
    """Materialised output of an executed plan."""

    rows: List[tuple]
    io: IOCounters
    plan: Plan

    @property
    def n_rows(self) -> int:
        """Number of result tuples."""
        return len(self.rows)


class Database:
    """Catalog + statistics + storage + optimizer + executor, in one box."""

    def __init__(self, rows_per_page: int = 50, histogram_buckets: int = 10):
        if rows_per_page <= 0:
            raise ValueError("rows_per_page must be positive")
        self.rows_per_page = rows_per_page
        self.histogram_buckets = histogram_buckets
        self.catalog = Catalog()
        self.stats = StatisticsCatalog(self.catalog)
        self.storage = StorageManager()
        self._bindings: Dict[str, Tuple[str, str]] = {}

    # ------------------------------------------------------------------
    # Data definition / loading
    # ------------------------------------------------------------------

    def create_table(
        self,
        name: str,
        column_names: Sequence[str],
        rows: Iterable[tuple],
    ) -> Table:
        """Load explicit tuples as a new table and ANALYZE every column."""
        rows = [tuple(r) for r in rows]
        for r in rows:
            if len(r) != len(column_names):
                raise ValueError(
                    f"row arity {len(r)} does not match columns {column_names}"
                )
        columns = [Column(c) for c in column_names]
        table = Table(
            name=name,
            columns=columns,
            n_rows=len(rows),
            rows_per_page=self.rows_per_page,
        )
        self.catalog.add(table)
        schema = Schema(tuple(f"{name}.{c}" for c in column_names))
        self.storage.register(
            PagedFile.from_rows(name, schema, rows, self.rows_per_page)
        )
        self._register_stats(table, column_names, rows)
        return table

    def _register_stats(self, table, column_names, rows) -> None:
        # DDL refreshes the shared statistics catalog *in place*: external
        # holders (e.g. a serving OptimizerService keyed on stats.version)
        # must observe the new table as a version bump on the same object,
        # not be stranded on a replaced catalog with a reset fence.
        self.stats.refresh_schema()
        if rows:
            for idx, col in enumerate(column_names):
                values = [float(r[idx]) for r in rows]
                self.stats.analyze_column(
                    table.name, col, values, n_buckets=self.histogram_buckets
                )

    def generate_table(
        self,
        name: str,
        n_rows: int,
        specs: Sequence[ColumnSpec],
        seed: int = 0,
    ) -> Table:
        """Create a synthetic table from column specs (see workloads)."""
        rng = np.random.default_rng(seed)
        gt = generate_table(
            name, n_rows, specs, rng, rows_per_page=self.rows_per_page
        )
        self.catalog.add(gt.table)
        self.storage.register(gt.file)
        self._register_stats(
            gt.table,
            [s.name for s in specs],
            list(zip(*[gt.values[s.name] for s in specs])) if specs and n_rows else [],
        )
        return gt.table

    def table_names(self) -> List[str]:
        """Names of all loaded tables."""
        return self.catalog.names()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def join_query(
        self,
        tables: Sequence[str],
        on: Mapping[Tuple[str, str], Tuple[str, str]],
        required_order: Optional[str] = None,
    ) -> JoinQuery:
        """Declare an equijoin over loaded tables.

        ``on`` maps table pairs to the column pair they join on; join
        selectivities come from the catalog's distinct counts, and the
        executor key bindings are remembered for :meth:`execute`.
        """
        query = JoinQuery.from_catalog(
            self.stats,
            tables,
            dict(on),
            required_order=required_order,
            rows_per_page=self.rows_per_page,
        )
        for (ta, tb), (ca, cb) in on.items():
            label = f"{ta}.{ca}={tb}.{cb}"
            self._bindings[label] = (f"{ta}.{ca}", f"{tb}.{cb}")
        return query

    def optimize(
        self,
        query: JoinQuery,
        environment: Environment,
        cost_model: Optional[CostModel] = None,
        plan_space: str = "left-deep",
    ) -> OptimizationResult:
        """Pick a plan; the optimizer is chosen by the environment's type."""
        if isinstance(environment, DiscreteBayesNet):
            return optimize_dependent(
                query, environment, cost_model=cost_model, plan_space=plan_space
            )
        if isinstance(environment, MarkovParameter):
            return optimize_algorithm_c(
                query, environment, cost_model=cost_model, plan_space=plan_space
            )
        if isinstance(environment, DiscreteDistribution):
            if query.has_uncertain_sizes():
                return optimize_algorithm_d(
                    query,
                    environment,
                    cost_model=cost_model,
                    plan_space=plan_space,
                    fast=True,
                )
            return optimize_algorithm_c(
                query, environment, cost_model=cost_model, plan_space=plan_space
            )
        if isinstance(environment, (int, float)):
            return optimize_lsc(
                query,
                float(environment),
                cost_model=cost_model,
                plan_space=plan_space,
            )
        raise TypeError(
            f"unsupported environment type {type(environment).__name__}"
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def execute(
        self,
        plan: Plan,
        memory_pages: int,
        filters: Optional[Dict[str, "Callable"]] = None,
        feedback: Optional["SelectivityFeedback"] = None,
    ) -> QueryResult:
        """Run a plan on the tuple engine with the given buffer budget.

        ``filters`` maps scan filter labels to row predicates (see
        :func:`repro.engine.executor.execute_plan`).  Passing a
        :class:`~repro.catalog.feedback.SelectivityFeedback` records the
        joins' measured cardinalities into it — the feedback loop.
        """
        if memory_pages < 1:
            raise ValueError("memory_pages must be >= 1")
        pool = BufferPool(memory_pages)
        ctx = ExecutionContext(
            storage=self.storage, pool=pool, rows_per_page=self.rows_per_page
        )
        result_file, io = execute_plan(plan, ctx, self._bindings, filters=filters)
        if feedback is not None:
            feedback.record(ctx.observations)
        rows = [row for page in result_file.pages for row in page.rows]
        ctx.drop_temp(result_file)
        return QueryResult(rows=rows, io=io, plan=plan)

    def run(
        self,
        tables: Sequence[str],
        on: Mapping[Tuple[str, str], Tuple[str, str]],
        environment: Environment,
        memory_pages: int,
        required_order: Optional[str] = None,
    ) -> QueryResult:
        """One-shot convenience: declare, optimize, execute."""
        query = self.join_query(tables, on, required_order=required_order)
        chosen = self.optimize(query, environment)
        return self.execute(chosen.plan, memory_pages)

    def explain(self, plan: Plan) -> str:
        """Human-readable plan rendering."""
        return plan.pretty()
