"""Deciding when sampling pays off ([SBM93]-style, Section 2.3).

[SBM93] — the prior work the paper calls "closest to that advocated here"
— uses decision-theoretic methods to pre-compute when reducing a
selectivity's uncertainty by sampling is worth the sampling cost.  With
selectivities as first-class distributions, that computation is the
classic *expected value of sample information* (EVSI):

* without sampling: commit to the LEC plan under the current prior;
  expected cost ``C0``.
* with a sample of ``n`` rows: the number of matches ``k`` follows the
  prior-predictive distribution; for each outcome the posterior sharpens,
  the optimizer may pick a different plan, and the expected cost under
  that posterior applies.  Weighting by ``Pr(k)`` and adding the probe's
  page I/Os gives the with-sampling expected cost ``C(n)``.
* sample iff ``C(n) + probe_cost < C0``; EVSI = ``C0 − C(n)``.

Everything reuses Algorithm D for plan choice, so the decision is
consistent with how the plan will actually be costed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional, Tuple

import numpy as np

from ..core.algorithm_d import optimize_algorithm_d
from ..core.distributions import DiscreteDistribution
from ..costmodel.model import CostModel
from ..plans.query import JoinPredicate, JoinQuery

__all__ = ["SamplingDecision", "posterior_given_outcome", "evaluate_sampling"]


@dataclass(frozen=True)
class SamplingDecision:
    """EVSI analysis for one candidate sample size."""

    sample_size: int
    cost_without: float
    cost_with: float  # expected plan cost after sampling (excl. probe)
    probe_cost: float
    evsi: float

    @property
    def net_benefit(self) -> float:
        """Expected saving minus the probe's cost."""
        return self.evsi - self.probe_cost

    @property
    def worthwhile(self) -> bool:
        """True when sampling is expected to pay for itself."""
        return self.net_benefit > 0


def _log_binom_pmf(k: int, n: int, p: float) -> float:
    if p <= 0.0:
        return 0.0 if k > 0 else 1.0
    if p >= 1.0:
        return 0.0 if k < n else 1.0
    log_pmf = (
        math.lgamma(n + 1)
        - math.lgamma(k + 1)
        - math.lgamma(n - k + 1)
        + k * math.log(p)
        + (n - k) * math.log(1.0 - p)
    )
    return math.exp(log_pmf)


def posterior_given_outcome(
    prior: DiscreteDistribution,
    n: int,
    k: int,
    match_prob: Optional[Callable[[float], float]] = None,
) -> Tuple[DiscreteDistribution, float]:
    """Bayes update of a discrete selectivity prior on ``k``-of-``n``.

    ``match_prob`` maps a selectivity support point to the probability
    that one *sampled row* matches the probe predicate.  It defaults to
    the identity (sampling the selectivity directly, appropriate for
    filter predicates); join selectivities — per row *pair* — are usually
    observed through a correlated row-level property, e.g.
    ``match_prob = lambda s: min(1, s / base_selectivity * base_rate)``.

    Returns ``(posterior, Pr(outcome))``; the prior-predictive probability
    is the normalising constant.
    """
    if not 0 <= k <= n:
        raise ValueError("need 0 <= k <= n")
    mp = match_prob if match_prob is not None else (lambda s: s)
    likelihoods = np.array(
        [_log_binom_pmf(k, n, min(1.0, max(0.0, mp(float(s))))) for s in prior.values]
    )
    joint = prior.probs * likelihoods
    evidence = float(joint.sum())
    if evidence <= 0.0:
        raise ValueError("outcome has zero probability under the prior")
    return DiscreteDistribution(prior.values, joint / evidence), evidence


def evaluate_sampling(
    query: JoinQuery,
    predicate_label: str,
    memory: DiscreteDistribution,
    sample_size: int,
    probe_cost_pages: float,
    cost_model: Optional[CostModel] = None,
    max_buckets: int = 12,
    fast: bool = True,
    match_prob: Optional[Callable[[float], float]] = None,
) -> SamplingDecision:
    """Full EVSI analysis for sampling one predicate's selectivity.

    ``probe_cost_pages`` is the page-I/O price of the probe (e.g. one
    page per sampled row, capped at the relation size — see
    :func:`repro.catalog.sampling.estimate_selectivity`).
    ``match_prob`` maps selectivity support points to per-sampled-row
    match probabilities (see :func:`posterior_given_outcome`).
    """
    if sample_size < 1:
        raise ValueError("sample_size must be >= 1")
    cm = cost_model if cost_model is not None else CostModel()
    target = next(
        (p for p in query.predicates if p.label == predicate_label), None
    )
    if target is None:
        raise ValueError(f"no predicate labelled {predicate_label!r}")
    prior = target.selectivity_distribution()
    if prior.is_point_mass():
        raise ValueError(
            "the predicate's selectivity is already certain; nothing to learn"
        )

    def optimize_under(dist: DiscreteDistribution) -> float:
        q = _with_predicate_dist(query, predicate_label, dist)
        res = optimize_algorithm_d(
            q, memory, cost_model=cm, max_buckets=max_buckets, fast=fast
        )
        return res.objective

    cost_without = optimize_under(prior)

    cost_with = 0.0
    total_evidence = 0.0
    for k in range(sample_size + 1):
        posterior, evidence = _safe_posterior(prior, sample_size, k, match_prob)
        if evidence <= 0.0:
            continue
        cost_with += evidence * optimize_under(posterior)
        total_evidence += evidence
    # Guard against mass lost to numerics.
    cost_with /= max(total_evidence, 1e-12)

    return SamplingDecision(
        sample_size=sample_size,
        cost_without=cost_without,
        cost_with=cost_with,
        probe_cost=probe_cost_pages,
        evsi=cost_without - cost_with,
    )


def _safe_posterior(prior, n, k, match_prob=None):
    try:
        return posterior_given_outcome(prior, n, k, match_prob=match_prob)
    except ValueError:
        return prior, 0.0


def _with_predicate_dist(
    query: JoinQuery, label: str, dist: DiscreteDistribution
) -> JoinQuery:
    preds = [
        JoinPredicate(
            left=p.left,
            right=p.right,
            selectivity=dist.mean() if p.label == label else p.selectivity,
            label=p.label,
            selectivity_dist=dist if p.label == label else p.selectivity_dist,
            result_pages_override=p.result_pages_override,
        )
        for p in query.predicates
    ]
    return JoinQuery(
        list(query.relations),
        preds,
        required_order=query.required_order,
        rows_per_page=query.rows_per_page,
    )
