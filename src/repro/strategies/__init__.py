"""Deferred-decision strategies from the paper's Section 2.3 survey.

Implemented as comparable baselines against compile-time LEC:

* parametric optimization ([INSS92]) and the LEC-parametric hybrid;
* choose-plan / choice-node plans resolved at start-up ([GC94]);
* mid-execution re-optimization on observed statistics ([KD98]/[UFA98]);
* the expected-value-of-sampling decision ([SBM93]).
"""

from .choice_nodes import ChoicePlan, build_choice_plan
from .parametric import ParametricPlanSet, parametric_optimize, precompute_lec_plans
from .reoptimize import (
    AdaptiveExecutionResult,
    PhaseRecord,
    run_with_reoptimization,
)
from .sampling_decision import (
    SamplingDecision,
    evaluate_sampling,
    posterior_given_outcome,
)

__all__ = [
    "ParametricPlanSet",
    "parametric_optimize",
    "precompute_lec_plans",
    "ChoicePlan",
    "build_choice_plan",
    "AdaptiveExecutionResult",
    "PhaseRecord",
    "run_with_reoptimization",
    "SamplingDecision",
    "evaluate_sampling",
    "posterior_given_outcome",
]
