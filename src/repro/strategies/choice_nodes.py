"""Choose-plan ("choice node") plans ([GC94]-style, Section 2.3).

The hybrid strategy the paper surveys third: compile time does the search
work, but decisions that depend on the unknown parameter are packaged
into the plan as *choice nodes* resolved at start-up.  Here the artifact
is a :class:`ChoicePlan`: a single shippable object containing one plan
alternative per parameter region plus the predicate (a memory threshold
test) that selects among them, with structurally shared subplans stored
once.

The contrast the paper draws — "when our approach is applied at
compile-time, the size of the query plan created does not increase as
with some of these approaches" — is measurable here:
``ChoicePlan.stored_nodes()`` grows with the number of regions, while the
LEC plan is always exactly one plan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..core.context import OptimizationContext
from ..core.distributions import DiscreteDistribution
from ..costmodel.model import CostModel
from ..optimizer.result import OptimizerStats
from ..plans.nodes import Plan
from ..plans.query import JoinQuery
from .parametric import ParametricPlanSet, parametric_optimize

__all__ = ["ChoicePlan", "build_choice_plan"]


@dataclass
class ChoicePlan:
    """A query plan whose root is a start-up-time choose-plan operator.

    ``thresholds`` are the memory cut points; ``alternatives[i]`` is used
    when the observed memory lies in ``[thresholds[i-1], thresholds[i])``
    (with open ends).  Subplans shared between alternatives are counted
    once in :meth:`stored_nodes`.
    """

    thresholds: List[float]
    alternatives: List[Plan]
    stats: OptimizerStats = field(default_factory=OptimizerStats)

    def __post_init__(self) -> None:
        if len(self.alternatives) != len(self.thresholds) + 1:
            raise ValueError(
                "need exactly one more alternative than thresholds"
            )
        if any(b <= a for a, b in zip(self.thresholds, self.thresholds[1:])):
            raise ValueError("thresholds must be strictly increasing")

    def resolve(self, memory: float) -> Plan:
        """The start-up-time choice: pick the alternative for ``memory``."""
        idx = 0
        for t in self.thresholds:
            if memory >= t:
                idx += 1
            else:
                break
        return self.alternatives[idx]

    @property
    def n_alternatives(self) -> int:
        """Number of alternative complete plans."""
        return len(self.alternatives)

    def stored_nodes(self) -> int:
        """Plan-tree nodes stored, counting shared subtrees once."""
        unique = set()
        for plan in self.alternatives:
            for node in plan.nodes():
                unique.add(node.signature())
        return len(unique)

    def expected_cost(
        self,
        query: JoinQuery,
        memory: DiscreteDistribution,
        cost_model: Optional[CostModel] = None,
    ) -> float:
        """``E_M[Φ(resolve(M), M)]`` when start-up observes M exactly."""
        cm = cost_model if cost_model is not None else CostModel()
        return memory.expectation(
            lambda m: cm.plan_cost(self.resolve(m), query, m)
        )


def build_choice_plan(
    query: JoinQuery,
    memory_lo: float,
    memory_hi: float,
    cost_model: Optional[CostModel] = None,
    plan_space: str = "left-deep",
    context: Optional[OptimizationContext] = None,
) -> ChoicePlan:
    """Compile a choice plan covering ``[memory_lo, memory_hi]``.

    Runs parametric optimization and repackages the merged regions as a
    choose-plan operator.
    """
    pset: ParametricPlanSet = parametric_optimize(
        query,
        memory_lo,
        memory_hi,
        cost_model=cost_model,
        plan_space=plan_space,
        context=context,
    )
    thresholds = [r.lo for r in pset.regions[1:]]
    alternatives = [r.plan for r in pset.regions]
    return ChoicePlan(
        thresholds=thresholds, alternatives=alternatives, stats=pset.stats
    )
