"""Mid-execution re-optimization ([KD98]-style, Section 2.3).

The run-time strategy the paper surveys for parameters that cannot be
known even at start-up (true predicate selectivities): annotate the plan
with the optimizer's expected intermediate-result sizes, compare them
with the *measured* sizes during execution, and when the deviation is
significant, stop and re-optimize the remainder of the query with the
corrected statistics.

This module simulates that protocol on the cost model: execution proceeds
join phase by join phase against a "true world" query (actual sizes and
selectivities) while the optimizer only ever sees its estimates — updated
with each materialised intermediate it has observed.  Unlike [KD98]'s
restart, completed work is kept and only the remaining joins are
re-planned (closer to [UFA98]'s forward-progress scrambling); the
difference is documented in DESIGN.md.

Limitations (documented): plans must be left-deep, and required output
orders are not tracked across re-planning — the E15 experiment uses
order-free queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..costmodel.estimates import subset_size
from ..costmodel.model import CostModel
from ..optimizer.exhaustive import enumerate_left_deep_plans
from ..plans.nodes import Plan, PlanShapeError
from ..plans.query import JoinPredicate, JoinQuery, RelationSpec

__all__ = ["PhaseRecord", "AdaptiveExecutionResult", "run_with_reoptimization"]

#: Name given to the materialised intermediate when re-planning.
INTERMEDIATE = "__intermediate"


@dataclass(frozen=True)
class PhaseRecord:
    """One executed join phase."""

    joined: Tuple[str, ...]
    method: str
    memory: float
    cost: float
    estimated_out_pages: float
    actual_out_pages: float
    triggered_reoptimization: bool


@dataclass
class AdaptiveExecutionResult:
    """Outcome of one simulated adaptive execution."""

    realized_cost: float
    n_reoptimizations: int
    phases: List[PhaseRecord] = field(default_factory=list)
    reoptimization_evals: int = 0


def _deviation(actual: float, estimated: float) -> float:
    if actual <= 0 or estimated <= 0:
        return float("inf")
    return max(actual / estimated, estimated / actual)


def _remainder_query(
    est_query: JoinQuery,
    joined: FrozenSet[str],
    actual_pages: float,
) -> Tuple[JoinQuery, Dict[str, str]]:
    """Build the optimizer's view of the remaining work.

    The materialised intermediate becomes a base relation with its
    *observed* size; remaining base relations keep their estimated specs;
    predicates crossing the frontier are re-rooted at the intermediate
    (selectivities multiplied when several cross to the same relation).
    Returns the query and a map from new predicate labels to original.
    """
    remaining = [r for r in est_query.relations if r.name not in joined]
    specs = [
        RelationSpec(name=INTERMEDIATE, pages=max(1.0, actual_pages))
    ] + list(remaining)
    label_map: Dict[str, str] = {}
    cross: Dict[str, float] = {}
    cross_labels: Dict[str, str] = {}
    preds: List[JoinPredicate] = []
    for p in est_query.predicates:
        left_in = p.left in joined
        right_in = p.right in joined
        if left_in and right_in:
            continue  # already applied
        if not left_in and not right_in:
            preds.append(p)
            continue
        outside = p.right if left_in else p.left
        cross[outside] = cross.get(outside, 1.0) * p.selectivity
        cross_labels.setdefault(outside, p.label)
    for outside, sel in cross.items():
        label = f"{INTERMEDIATE}={outside}"
        label_map[label] = cross_labels[outside]
        preds.append(
            JoinPredicate(
                left=INTERMEDIATE,
                right=outside,
                selectivity=min(1.0, sel),
                label=label,
            )
        )
    return (
        JoinQuery(specs, preds, rows_per_page=est_query.rows_per_page),
        label_map,
    )


def run_with_reoptimization(
    est_query: JoinQuery,
    true_query: JoinQuery,
    initial_plan: Plan,
    memory_trace: Sequence[float],
    cost_model: Optional[CostModel] = None,
    deviation_threshold: float = 2.0,
    enabled: bool = True,
    reoptimizer: Optional[Callable[[JoinQuery, float], Plan]] = None,
) -> AdaptiveExecutionResult:
    """Simulate executing ``initial_plan`` with [KD98]-style monitoring.

    Parameters
    ----------
    est_query / true_query:
        The optimizer's estimated statistics vs the world's actual ones
        (same relations and predicates; sizes/selectivities may differ).
    initial_plan:
        Left-deep plan chosen at compile time from ``est_query``.
    memory_trace:
        Actual memory per executed join phase (length >= number of joins).
    deviation_threshold:
        Re-optimize when ``max(actual/est, est/actual)`` of a
        materialised intermediate's page count exceeds this.
    enabled:
        ``False`` runs the plan to completion without monitoring (the
        static baseline, useful for paired comparisons).
    reoptimizer:
        Strategy for re-planning the remainder given (remainder query,
        current memory); defaults to LSC at the observed memory.
    """
    if not initial_plan.is_left_deep():
        raise ValueError("adaptive execution supports left-deep plans only")
    cm = cost_model if cost_model is not None else CostModel()
    if reoptimizer is None:
        def reoptimizer(q: JoinQuery, memory: float) -> Plan:
            return _replan_from_intermediate(q, memory, cm)

    order = initial_plan.join_order()
    methods = [j.method for j in initial_plan.joins()]
    n_joins = len(methods)
    if len(memory_trace) < n_joins:
        raise ValueError(f"need {n_joins} phase memories")

    evals_before = cm.eval_count
    result = AdaptiveExecutionResult(realized_cost=0.0, n_reoptimizations=0)

    # State: which true relations are joined, actual/estimated sizes of
    # the current intermediate, and the pending (order, methods) schedule.
    joined: FrozenSet[str] = frozenset((order[0],))
    est_view = est_query  # the optimizer's current statistics view
    est_subset: FrozenSet[str] = frozenset((order[0],))
    pending = list(zip(order[1:], methods))
    phase = 0

    while pending:
        next_rel, method = pending.pop(0)
        memory = float(memory_trace[phase])

        # Actual input sizes come from the true world.
        left_actual = subset_size(joined, true_query).pages
        right_actual = subset_size(frozenset((next_rel,)), true_query).pages

        new_joined = joined | {next_rel}
        actual_out = subset_size(new_joined, true_query).pages

        # The optimizer's expectation for this output, under its view.
        new_est_subset = est_subset | {next_rel}
        est_out = subset_size(new_est_subset, est_view).pages

        cost = cm.join_cost(method, left_actual, right_actual, memory)
        is_last = not pending
        if not is_last:
            cost += actual_out  # materialise the intermediate
        result.realized_cost += cost

        deviated = (
            enabled
            and not is_last
            and _deviation(actual_out, est_out) > deviation_threshold
        )
        result.phases.append(
            PhaseRecord(
                joined=tuple(sorted(new_joined)),
                method=method.value,
                memory=memory,
                cost=cost,
                estimated_out_pages=est_out,
                actual_out_pages=actual_out,
                triggered_reoptimization=deviated,
            )
        )
        joined = new_joined
        est_subset = new_est_subset
        phase += 1

        if deviated:
            result.n_reoptimizations += 1
            remainder, _ = _remainder_query(est_query, joined, actual_out)
            new_plan = reoptimizer(remainder, memory)
            try:
                new_order = new_plan.join_order()
            except PlanShapeError as exc:
                raise ValueError(
                    "the reoptimizer must return a left-deep remainder "
                    f"plan: {exc}"
                ) from None
            if new_order[0] != INTERMEDIATE:
                raise ValueError(
                    "re-planned order must start from the materialised "
                    f"intermediate, got {new_order}"
                )
            new_methods = [j.method for j in new_plan.joins()]
            pending = list(zip(new_order[1:], new_methods))
            est_view = remainder
            est_subset = frozenset((INTERMEDIATE,))

    result.reoptimization_evals = cm.eval_count - evals_before
    return result


def _replan_from_intermediate(
    remainder: JoinQuery, memory: float, cm: CostModel
) -> Plan:
    """Cheapest left-deep remainder plan that builds on the intermediate.

    The materialised intermediate must stay the leftmost input (completed
    work is kept, not discarded), so the System-R DP cannot be used
    directly; the remainder is small, so filtered exhaustive enumeration
    is exact and cheap.
    """
    best_plan: Optional[Plan] = None
    best_cost = float("inf")
    for plan in enumerate_left_deep_plans(remainder, cm.methods):
        if plan.join_order()[0] != INTERMEDIATE:
            continue
        cost = cm.plan_cost(plan, remainder, memory)
        if cost < best_cost:
            best_cost = cost
            best_plan = plan
    if best_plan is None:
        raise ValueError("no remainder plan starts from the intermediate")
    return best_plan
