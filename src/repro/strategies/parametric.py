"""Parametric query optimization ([INSS92]-style, Section 2.3).

The second start-up-time strategy the paper surveys: at compile time,
"find the best execution plan for every possible run-time value of the
parameter", then at start-up do "a simple table lookup to find the best
plan for the current parameter value".

Because the join cost formulas are step functions of memory, the
parameter axis partitions into finitely many *regions* within which the
optimal plan is constant; the region boundaries are exactly the
cost-formula breakpoints (:func:`repro.core.bucketing.
collect_memory_breakpoints`).  :func:`parametric_optimize` optimizes one
representative per region and merges adjacent regions that elect the same
plan, yielding a compact :class:`ParametricPlanSet`.

The module also implements the paper's proposed hybrid — "precompute the
best expected plan under a number of possible distributions … and store
these expected plans, for use at query execution time" — as
:func:`precompute_lec_plans`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.bucketing import collect_memory_breakpoints
from ..core.context import OptimizationContext
from ..core.distributions import DiscreteDistribution
from ..core.lsc import optimize_lsc
from ..core.algorithm_c import optimize_algorithm_c
from ..costmodel.model import CostModel
from ..optimizer.result import OptimizerStats
from ..plans.nodes import Plan
from ..plans.query import JoinQuery

__all__ = ["ParametricPlanSet", "parametric_optimize", "precompute_lec_plans"]


@dataclass(frozen=True)
class _Region:
    lo: float
    hi: float  # exclusive; math.inf for the last region
    plan: Plan
    cost_at_rep: float


@dataclass
class ParametricPlanSet:
    """Compile-time product of parametric optimization.

    ``regions`` are half-open memory intervals ``[lo, hi)`` in ascending
    order, each with the plan that is optimal throughout the interval.
    """

    regions: List[_Region]
    stats: OptimizerStats = field(default_factory=OptimizerStats)

    def plan_for(self, memory: float) -> Plan:
        """Start-up-time lookup: the optimal plan at this memory value."""
        if not self.regions:
            raise ValueError("empty parametric plan set")
        if memory < self.regions[0].lo:
            return self.regions[0].plan
        for region in self.regions:
            if region.lo <= memory < region.hi:
                return region.plan
        return self.regions[-1].plan

    @property
    def n_regions(self) -> int:
        """Number of stored (merged) regions."""
        return len(self.regions)

    def distinct_plans(self) -> List[Plan]:
        """The distinct plans stored, in region order."""
        seen: Dict[str, Plan] = {}
        for region in self.regions:
            seen.setdefault(region.plan.signature(), region.plan)
        return list(seen.values())

    def stored_nodes(self) -> int:
        """Total plan-tree nodes stored *with* cross-plan sharing.

        Structurally identical subtrees are stored once (the [GC94]
        choice-node representation shares common subplans); this is the
        plan-size metric E13 compares against LEC's single plan.
        """
        unique_signatures = set()
        for plan in self.distinct_plans():
            for node in plan.nodes():
                unique_signatures.add(node.signature())
        return len(unique_signatures)

    def expected_cost_with_lookup(
        self,
        query: JoinQuery,
        memory: DiscreteDistribution,
        cost_model: Optional[CostModel] = None,
    ) -> float:
        """``E_M[Φ(plan_for(M), M)]`` — cost when start-up knows M exactly.

        This is the best any start-up-time strategy can do, and a lower
        bound for every compile-time strategy.
        """
        cm = cost_model if cost_model is not None else CostModel()
        return memory.expectation(
            lambda m: cm.plan_cost(self.plan_for(m), query, m)
        )


def parametric_optimize(
    query: JoinQuery,
    memory_lo: float,
    memory_hi: float,
    cost_model: Optional[CostModel] = None,
    plan_space: str = "left-deep",
    allow_cross_products: bool = False,
    context: Optional[OptimizationContext] = None,
) -> ParametricPlanSet:
    """Optimize for every memory value in ``[memory_lo, memory_hi]``.

    The interval is cut at every cost-formula breakpoint the optimizer
    could encounter; within each cell all candidate costs are constant,
    so one LSC invocation at the cell midpoint is exact for the whole
    cell.  Adjacent cells electing the same plan are merged.  The
    (shared) ``context`` makes the per-cell invocations reuse subset
    sizes rather than recomputing them once per region.
    """
    if not 0 < memory_lo <= memory_hi:
        raise ValueError("need 0 < memory_lo <= memory_hi")
    cm = cost_model if cost_model is not None else CostModel()
    if context is None:
        context = OptimizationContext(query, cost_model=cm)
    cuts = [
        b
        for b in collect_memory_breakpoints(
            query, cm.methods, allow_cross_products=allow_cross_products
        )
        if memory_lo < b <= memory_hi
    ]
    edges = [memory_lo, *cuts, memory_hi]

    stats = OptimizerStats(invocations=0)
    raw: List[_Region] = []
    for lo, hi in zip(edges[:-1], edges[1:]):
        rep = (lo + hi) / 2.0 if hi > lo else lo
        result = optimize_lsc(
            query,
            rep,
            cost_model=cm,
            plan_space=plan_space,
            allow_cross_products=allow_cross_products,
            context=context,
        )
        stats = stats.merged_with(result.stats)
        raw.append(
            _Region(lo=lo, hi=hi, plan=result.plan, cost_at_rep=result.objective)
        )
    # Open the last region to +inf (costs only improve with more memory,
    # and above the largest breakpoint the winner cannot change).
    if raw:
        last = raw[-1]
        raw[-1] = _Region(last.lo, math.inf, last.plan, last.cost_at_rep)

    merged: List[_Region] = []
    for region in raw:
        if merged and merged[-1].plan == region.plan:
            prev = merged[-1]
            merged[-1] = _Region(prev.lo, region.hi, prev.plan, prev.cost_at_rep)
        else:
            merged.append(region)
    return ParametricPlanSet(regions=merged, stats=stats)


def precompute_lec_plans(
    query: JoinQuery,
    candidate_distributions: Sequence[DiscreteDistribution],
    cost_model: Optional[CostModel] = None,
    context: Optional[OptimizationContext] = None,
) -> List[Tuple[DiscreteDistribution, Plan, float]]:
    """The paper's LEC-parametric hybrid.

    Compile-time: compute the LEC plan under each candidate distribution
    ("ones that give good coverage of what we expect to encounter at
    run-time").  Start-up time: pick the stored plan whose distribution
    matches the observed conditions.  Returns ``(distribution, plan,
    expected_cost)`` triples.
    """
    cm = cost_model if cost_model is not None else CostModel()
    if context is None:
        context = OptimizationContext(query, cost_model=cm)
    out: List[Tuple[DiscreteDistribution, Plan, float]] = []
    for dist in candidate_distributions:
        res = optimize_algorithm_c(query, dist, cost_model=cm, context=context)
        out.append((dist, res.plan, res.objective))
    return out
