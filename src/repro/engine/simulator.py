"""Monte-Carlo plan execution: realized costs under sampled environments.

The analytic machinery computes ``E[Φ]``; the simulator *runs the
lottery*: it samples concrete environments (a memory value, a memory
trajectory across phases, or full parameter vectors including true
selectivities), evaluates each plan's realized cost in each, and reports
the empirical statistics.  This closes the loop the paper argues about —
"Plan 2 is likely to be cheaper on average across a large number of
evaluations" becomes a measured win-rate (experiments E2/E5/E12).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..core.distributions import DiscreteDistribution
from ..core.markov import MarkovParameter
from ..costmodel.model import CostModel
from ..plans.nodes import Plan
from ..plans.query import JoinPredicate, JoinQuery, RelationSpec

__all__ = [
    "SimulationSummary",
    "simulate_plan_costs",
    "simulate_plan_costs_multiparam",
    "compare_plans",
    "realize_query",
]

Environment = Union[DiscreteDistribution, MarkovParameter]


@dataclass
class SimulationSummary:
    """Empirical statistics of one plan's realized costs."""

    plan: Plan
    mean: float
    std: float
    p50: float
    p95: float
    worst: float
    n_trials: int

    @classmethod
    def from_costs(cls, plan: Plan, costs: np.ndarray) -> "SimulationSummary":
        """Summarise an array of realized costs."""
        return cls(
            plan=plan,
            mean=float(costs.mean()),
            std=float(costs.std(ddof=0)),
            p50=float(np.quantile(costs, 0.5)),
            p95=float(np.quantile(costs, 0.95)),
            worst=float(costs.max()),
            n_trials=int(costs.size),
        )


def _sample_memory_trace(
    env: Environment, n_phases: int, rng: np.random.Generator
) -> List[float]:
    if isinstance(env, MarkovParameter):
        return env.sample_path(n_phases, rng)
    value = env.sample(rng)
    return [value] * n_phases


def simulate_plan_costs(
    plan: Plan,
    query: JoinQuery,
    env: Environment,
    n_trials: int,
    rng: np.random.Generator,
    cost_model: Optional[CostModel] = None,
) -> np.ndarray:
    """Realized Φ for ``n_trials`` sampled memory environments.

    Static environments draw one memory value per trial; Markov
    environments draw a full per-phase trajectory.
    """
    if n_trials <= 0:
        raise ValueError("n_trials must be positive")
    cm = cost_model if cost_model is not None else CostModel()
    costs = np.empty(n_trials)
    for i in range(n_trials):
        trace = _sample_memory_trace(env, plan.n_phases, rng)
        costs[i] = cm.plan_cost_dynamic(plan, query, trace)
    return costs


def realize_query(
    query: JoinQuery, rng: np.random.Generator
) -> JoinQuery:
    """Sample one concrete "true world" from a query's distributions.

    Every distributional relation size and predicate selectivity is
    replaced by a single sampled value; point-estimate fields pass
    through.  The result is the query as nature actually made it for one
    execution.
    """
    relations = []
    for spec in query.relations:
        pages = spec.pages
        if spec.pages_dist is not None:
            pages = float(spec.pages_dist.sample(rng))
        relations.append(
            RelationSpec(
                name=spec.name,
                pages=pages,
                rows=pages * query.rows_per_page,
                filter_selectivity=spec.filter_selectivity,
            )
        )
    predicates = []
    for pred in query.predicates:
        sel = pred.selectivity
        if pred.selectivity_dist is not None:
            sel = float(pred.selectivity_dist.sample(rng))
        predicates.append(
            JoinPredicate(
                left=pred.left,
                right=pred.right,
                selectivity=min(1.0, sel),
                label=pred.label,
                result_pages_override=pred.result_pages_override,
            )
        )
    return JoinQuery(
        relations,
        predicates,
        required_order=query.required_order,
        rows_per_page=query.rows_per_page,
    )


def simulate_plan_costs_multiparam(
    plan: Plan,
    query: JoinQuery,
    memory: DiscreteDistribution,
    n_trials: int,
    rng: np.random.Generator,
    cost_model: Optional[CostModel] = None,
) -> np.ndarray:
    """Realized Φ when sizes/selectivities are uncertain too.

    Each trial samples a concrete world via :func:`realize_query` plus a
    memory value, then costs the (fixed) plan in that world — the regret
    measurement for Algorithm D.
    """
    if n_trials <= 0:
        raise ValueError("n_trials must be positive")
    cm = cost_model if cost_model is not None else CostModel()
    costs = np.empty(n_trials)
    for i in range(n_trials):
        world = realize_query(query, rng)
        m = float(memory.sample(rng))
        costs[i] = cm.plan_cost(plan, world, m)
    return costs


def compare_plans(
    plans: Sequence[Plan],
    query: JoinQuery,
    env: Environment,
    n_trials: int,
    rng: np.random.Generator,
    cost_model: Optional[CostModel] = None,
) -> Dict[str, object]:
    """Head-to-head comparison over *common* sampled environments.

    All plans face the same environment in each trial (common random
    numbers), so ``win_rate[i]`` is the fraction of trials in which plan
    ``i`` was the strictly cheapest.  Returns summaries, the win-rate
    vector and the raw cost matrix (trials × plans).
    """
    if not plans:
        raise ValueError("need at least one plan")
    cm = cost_model if cost_model is not None else CostModel()
    n_phases = max(p.n_phases for p in plans)
    matrix = np.empty((n_trials, len(plans)))
    for t in range(n_trials):
        trace = _sample_memory_trace(env, n_phases, rng)
        for j, plan in enumerate(plans):
            matrix[t, j] = cm.plan_cost_dynamic(plan, query, trace[: plan.n_phases])
    summaries = [
        SimulationSummary.from_costs(plan, matrix[:, j])
        for j, plan in enumerate(plans)
    ]
    mins = matrix.min(axis=1, keepdims=True)
    is_win = matrix <= mins + 1e-9
    win_rate = is_win.mean(axis=0)
    return {
        "summaries": summaries,
        "win_rate": [float(w) for w in win_rate],
        "costs": matrix,
    }
