"""Paged storage: relations as sequences of fixed-capacity pages.

The cost unit throughout the paper is the *page I/O*, so the tuple-level
executor stores every relation as a :class:`PagedFile` — a list of pages,
each holding up to ``rows_per_page`` tuples — and routes every page access
through the buffer pool, which counts the I/Os.  Tuples are plain Python
tuples; a :class:`Schema` names their fields.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

__all__ = ["Schema", "Page", "PagedFile", "StorageManager"]

Row = Tuple


@dataclass(frozen=True)
class Schema:
    """Field names of a relation's tuples."""

    fields: Tuple[str, ...]

    def __post_init__(self) -> None:
        if len(set(self.fields)) != len(self.fields):
            raise ValueError("duplicate field names in schema")

    def index_of(self, name: str) -> int:
        """Position of a field within each tuple."""
        try:
            return self.fields.index(name)
        except ValueError:
            raise KeyError(f"no field {name!r} in schema {self.fields}") from None

    def concat(self, other: "Schema") -> "Schema":
        """Schema of a join result (fields concatenated; collisions suffixed)."""
        taken = set(self.fields)
        out = list(self.fields)
        for f in other.fields:
            name = f
            while name in taken:
                name = name + "_r"
            taken.add(name)
            out.append(name)
        return Schema(tuple(out))

    def __len__(self) -> int:
        return len(self.fields)


@dataclass
class Page:
    """One fixed-capacity page of tuples."""

    rows: List[Row] = field(default_factory=list)


class PagedFile:
    """A relation stored as pages of at most ``rows_per_page`` tuples."""

    def __init__(self, name: str, schema: Schema, rows_per_page: int):
        if rows_per_page <= 0:
            raise ValueError("rows_per_page must be positive")
        self.name = name
        self.schema = schema
        self.rows_per_page = rows_per_page
        self.pages: List[Page] = []

    @classmethod
    def from_rows(
        cls,
        name: str,
        schema: Schema,
        rows: Iterable[Row],
        rows_per_page: int,
    ) -> "PagedFile":
        """Bulk-load rows into pages (no I/O charged: initial load)."""
        pf = cls(name, schema, rows_per_page)
        current: List[Row] = []
        for row in rows:
            if len(row) != len(schema):
                raise ValueError(
                    f"row arity {len(row)} does not match schema {schema.fields}"
                )
            current.append(tuple(row))
            if len(current) == rows_per_page:
                pf.pages.append(Page(current))
                current = []
        if current:
            pf.pages.append(Page(current))
        return pf

    @property
    def n_pages(self) -> int:
        """Number of pages."""
        return len(self.pages)

    @property
    def n_rows(self) -> int:
        """Total tuple count."""
        return sum(len(p.rows) for p in self.pages)

    def append_row(self, row: Row) -> bool:
        """Append a tuple; returns True when a *new* page was started."""
        if len(row) != len(self.schema):
            raise ValueError("row arity does not match schema")
        if not self.pages or len(self.pages[-1].rows) >= self.rows_per_page:
            self.pages.append(Page([tuple(row)]))
            return True
        self.pages[-1].rows.append(tuple(row))
        return False


class StorageManager:
    """Owns all paged files (base tables and temporaries) by name."""

    def __init__(self):
        self._files: Dict[str, PagedFile] = {}
        self._temp_counter = itertools.count()

    def register(self, pf: PagedFile) -> PagedFile:
        """Add a file; names must be unique."""
        if pf.name in self._files:
            raise ValueError(f"file {pf.name!r} already registered")
        self._files[pf.name] = pf
        return pf

    def get(self, name: str) -> PagedFile:
        """Look up a file by name."""
        try:
            return self._files[name]
        except KeyError:
            raise KeyError(f"no paged file {name!r}") from None

    def new_temp(self, schema: Schema, rows_per_page: int) -> PagedFile:
        """Create and register a fresh temporary file."""
        name = f"__temp{next(self._temp_counter)}"
        return self.register(PagedFile(name, schema, rows_per_page))

    def drop(self, name: str) -> None:
        """Remove a file (temporaries after use)."""
        self._files.pop(name, None)

    def __contains__(self, name: str) -> bool:
        return name in self._files
