"""Execution substrate: environments, Monte-Carlo simulation, tuple engine."""

from .buffer import BufferPool, IOCounters
from .environment import (
    lognormal_memory,
    multiprogramming_chain,
    multiprogramming_memory,
    observed_memory,
    paper_bimodal_memory,
)
from .executor import (
    ExecutionContext,
    ExecutionError,
    HashIndex,
    index_nested_loop_join,
    block_nested_loop_join,
    execute_plan,
    external_sort,
    grace_hash_join,
    merge_join,
    sort_merge_join,
)
from .pages import Page, PagedFile, Schema, StorageManager
from .simulator import (
    SimulationSummary,
    compare_plans,
    realize_query,
    simulate_plan_costs,
    simulate_plan_costs_multiparam,
)

__all__ = [
    "BufferPool",
    "IOCounters",
    "Schema",
    "Page",
    "PagedFile",
    "StorageManager",
    "ExecutionContext",
    "ExecutionError",
    "execute_plan",
    "external_sort",
    "merge_join",
    "sort_merge_join",
    "block_nested_loop_join",
    "grace_hash_join",
    "HashIndex",
    "index_nested_loop_join",
    "paper_bimodal_memory",
    "multiprogramming_memory",
    "multiprogramming_chain",
    "lognormal_memory",
    "observed_memory",
    "SimulationSummary",
    "simulate_plan_costs",
    "simulate_plan_costs_multiparam",
    "compare_plans",
    "realize_query",
]
