"""Tuple-level physical operators: a real (if small) query engine.

The operators actually move tuples through paged storage, with every page
access routed through the counting :class:`~repro.engine.buffer.
BufferPool`.  They implement the same algorithms the cost model prices —
external merge sort, block nested loop, sort-merge join, Grace hash join
— so measured page I/Os can be compared against the formulas'
predictions, including the pass-count jumps at the memory breakpoints
(experiment E11).

Conventions
-----------
* An operator reads inputs through the pool (read I/Os on misses) and
  materialises its output into a temp file, charging one write per output
  page.
* ``memory`` is the pool capacity in pages; working-set limits (sort run
  length, BNL block size, hash partition counts) derive from it the same
  way the formulas assume.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from ..plans.nodes import Join, Plan, PlanNode, Project, Scan, Sort
from ..plans.nodes import Union as UnionNode
from ..plans.properties import JoinMethod
from .buffer import BufferPool, IOCounters
from .pages import PagedFile, Row, Schema, StorageManager

__all__ = [
    "ExecutionContext",
    "JoinObservation",
    "HashIndex",
    "index_nested_loop_join",
    "external_sort",
    "merge_join",
    "sort_merge_join",
    "block_nested_loop_join",
    "grace_hash_join",
    "execute_plan",
    "ExecutionError",
]


class ExecutionError(RuntimeError):
    """Raised when a plan cannot be executed (bad bindings, etc.)."""


@dataclass
class JoinObservation:
    """Measured cardinalities of one executed join."""

    predicate_label: str
    left_rows: int
    right_rows: int
    out_rows: int

    @property
    def actual_selectivity(self) -> float:
        """``out / (left · right)`` — the true selectivity realised."""
        denom = self.left_rows * self.right_rows
        return self.out_rows / denom if denom else 0.0


@dataclass
class ExecutionContext:
    """Shared state for one query execution.

    ``observations`` accumulates the measured input/output cardinalities
    of every join executed through :func:`execute_plan` — the raw
    material for cardinality feedback (see
    :mod:`repro.catalog.feedback`).
    """

    storage: StorageManager
    pool: BufferPool
    rows_per_page: int
    observations: List["JoinObservation"] = field(default_factory=list)

    def new_temp(self, schema: Schema) -> PagedFile:
        """Fresh temp file at the context's page size."""
        return self.storage.new_temp(schema, self.rows_per_page)

    def charge_output(self, pf: PagedFile) -> None:
        """Charge one write I/O per page of a materialised output."""
        self.pool.counters.writes += pf.n_pages

    def drop_temp(self, pf: PagedFile) -> None:
        """Release a temp file and its buffered pages."""
        self.pool.evict_file(pf.name)
        self.storage.drop(pf.name)


def _read_rows(ctx: ExecutionContext, pf: PagedFile) -> Iterator[Row]:
    for i in range(pf.n_pages):
        page = ctx.pool.read(pf, i)
        yield from page.rows


# ----------------------------------------------------------------------
# External merge sort
# ----------------------------------------------------------------------


def external_sort(
    ctx: ExecutionContext, pf: PagedFile, key_index: int
) -> PagedFile:
    """Sort a file by one field using memory-bounded external merge sort.

    Run formation reads ``B`` pages at a time (B = pool capacity), sorts
    in memory and writes a run; merge passes combine up to ``B - 1`` runs
    until one remains.  A file of at most ``B`` pages is sorted entirely
    in memory (one read pass, one output write).
    """
    capacity = ctx.pool.capacity
    if pf.n_pages == 0:
        out = ctx.new_temp(pf.schema)
        return out
    # Run formation.
    runs: List[PagedFile] = []
    buffer_rows: List[Row] = []
    pages_in_buffer = 0
    for i in range(pf.n_pages):
        page = ctx.pool.read(pf, i)
        buffer_rows.extend(page.rows)
        pages_in_buffer += 1
        if pages_in_buffer == capacity:
            runs.append(_write_run(ctx, pf.schema, buffer_rows, key_index))
            buffer_rows = []
            pages_in_buffer = 0
    if buffer_rows:
        runs.append(_write_run(ctx, pf.schema, buffer_rows, key_index))

    # Merge passes with fan-in capacity - 1.
    fan_in = max(2, capacity - 1)
    while len(runs) > 1:
        next_runs: List[PagedFile] = []
        for start in range(0, len(runs), fan_in):
            group = runs[start : start + fan_in]
            if len(group) == 1:
                next_runs.append(group[0])
                continue
            merged = _merge_runs(ctx, group, key_index)
            for run in group:
                ctx.drop_temp(run)
            next_runs.append(merged)
        runs = next_runs
    return runs[0]


def _write_run(
    ctx: ExecutionContext, schema: Schema, rows: List[Row], key_index: int
) -> PagedFile:
    rows = sorted(rows, key=lambda r: r[key_index])
    run = ctx.new_temp(schema)
    for row in rows:
        run.append_row(row)
    ctx.charge_output(run)
    return run


def _merge_runs(
    ctx: ExecutionContext, runs: List[PagedFile], key_index: int
) -> PagedFile:
    out = ctx.new_temp(runs[0].schema)
    iterators = [_read_rows(ctx, run) for run in runs]
    heap: List[Tuple[object, int, Row]] = []
    for idx, it in enumerate(iterators):
        row = next(it, None)
        if row is not None:
            heapq.heappush(heap, (row[key_index], idx, row))
    while heap:
        _, idx, row = heapq.heappop(heap)
        out.append_row(row)
        nxt = next(iterators[idx], None)
        if nxt is not None:
            heapq.heappush(heap, (nxt[key_index], idx, nxt))
    ctx.charge_output(out)
    return out


# ----------------------------------------------------------------------
# Joins
# ----------------------------------------------------------------------


def merge_join(
    ctx: ExecutionContext,
    left: PagedFile,
    right: PagedFile,
    left_key: int,
    right_key: int,
) -> PagedFile:
    """Merge two key-sorted inputs; duplicate key groups are buffered."""
    out_schema = left.schema.concat(right.schema)
    out = ctx.new_temp(out_schema)
    lit = _read_rows(ctx, left)
    rit = _read_rows(ctx, right)
    lrow = next(lit, None)
    rrow = next(rit, None)
    while lrow is not None and rrow is not None:
        lk, rk = lrow[left_key], rrow[right_key]
        if lk < rk:
            lrow = next(lit, None)
        elif lk > rk:
            rrow = next(rit, None)
        else:
            # Gather the right-side group for this key, then emit the
            # cross product with every matching left row.
            group: List[Row] = []
            while rrow is not None and rrow[right_key] == lk:
                group.append(rrow)
                rrow = next(rit, None)
            while lrow is not None and lrow[left_key] == lk:
                for g in group:
                    out.append_row(lrow + g)
                lrow = next(lit, None)
    ctx.charge_output(out)
    return out


def sort_merge_join(
    ctx: ExecutionContext,
    left: PagedFile,
    right: PagedFile,
    left_key: int,
    right_key: int,
) -> PagedFile:
    """Sort both inputs, then merge them."""
    ls = external_sort(ctx, left, left_key)
    rs = external_sort(ctx, right, right_key)
    try:
        return merge_join(ctx, ls, rs, left_key, right_key)
    finally:
        for tmp in (ls, rs):
            if tmp is not left and tmp is not right:
                ctx.drop_temp(tmp)


def block_nested_loop_join(
    ctx: ExecutionContext,
    outer: PagedFile,
    inner: PagedFile,
    outer_key: int,
    inner_key: int,
) -> PagedFile:
    """Join with memory-sized outer blocks hashed for inner probes."""
    capacity = ctx.pool.capacity
    block_pages = max(1, capacity - 2)
    out = ctx.new_temp(outer.schema.concat(inner.schema))
    for block_start in range(0, outer.n_pages, block_pages):
        block: Dict[object, List[Row]] = {}
        end = min(block_start + block_pages, outer.n_pages)
        for i in range(block_start, end):
            for row in ctx.pool.read(outer, i).rows:
                block.setdefault(row[outer_key], []).append(row)
        if not block:
            continue
        for j in range(inner.n_pages):
            for irow in ctx.pool.read(inner, j).rows:
                for orow in block.get(irow[inner_key], ()):
                    out.append_row(orow + irow)
    ctx.charge_output(out)
    return out


def grace_hash_join(
    ctx: ExecutionContext,
    left: PagedFile,
    right: PagedFile,
    left_key: int,
    right_key: int,
) -> PagedFile:
    """Grace hash join with build on the smaller input.

    If the smaller input fits in memory the partitioning phase is skipped
    (the in-memory fast path of the cost formula); otherwise both inputs
    are hash-partitioned so each build partition fits, then joined
    partition-wise.
    """
    build, probe, build_key, probe_key, build_is_left = _pick_build(
        left, right, left_key, right_key
    )
    capacity = ctx.pool.capacity
    out = ctx.new_temp(left.schema.concat(right.schema))

    def emit(brow: Row, prow: Row) -> None:
        out.append_row(brow + prow if build_is_left else prow + brow)

    if build.n_pages + 2 <= capacity:
        table: Dict[object, List[Row]] = {}
        for row in _read_rows(ctx, build):
            table.setdefault(row[build_key], []).append(row)
        for prow in _read_rows(ctx, probe):
            for brow in table.get(prow[probe_key], ()):
                emit(brow, prow)
        ctx.charge_output(out)
        return out

    n_partitions = max(2, -(-build.n_pages // max(1, capacity - 2)))
    build_parts = _partition(ctx, build, build_key, n_partitions)
    probe_parts = _partition(ctx, probe, probe_key, n_partitions)
    try:
        for bp, pp in zip(build_parts, probe_parts):
            table = {}
            for row in _read_rows(ctx, bp):
                table.setdefault(row[build_key], []).append(row)
            for prow in _read_rows(ctx, pp):
                for brow in table.get(prow[probe_key], ()):
                    emit(brow, prow)
    finally:
        for tmp in build_parts + probe_parts:
            ctx.drop_temp(tmp)
    ctx.charge_output(out)
    return out


def _pick_build(left, right, left_key, right_key):
    if left.n_pages <= right.n_pages:
        return left, right, left_key, right_key, True
    return right, left, right_key, left_key, False


def _partition(
    ctx: ExecutionContext, pf: PagedFile, key: int, n_partitions: int
) -> List[PagedFile]:
    parts = [ctx.new_temp(pf.schema) for _ in range(n_partitions)]
    for row in _read_rows(ctx, pf):
        parts[hash(row[key]) % n_partitions].append_row(row)
    for part in parts:
        ctx.charge_output(part)
    return parts


# ----------------------------------------------------------------------
# Whole-plan execution
# ----------------------------------------------------------------------

#: Maps a join predicate label to the (left field, right field) it joins.
KeyBinding = Dict[str, Tuple[str, str]]

#: Maps a scan filter label to a row predicate over the scanned table's
#: full schema (e.g. ``lambda row: row[0] < 100``).
FilterBinding = Dict[str, Callable[[Row], bool]]

_JOIN_IMPL: Dict[JoinMethod, Callable] = {
    JoinMethod.SORT_MERGE: sort_merge_join,
    JoinMethod.GRACE_HASH: grace_hash_join,
    JoinMethod.HYBRID_HASH: grace_hash_join,  # same tuple flow
    JoinMethod.BLOCK_NESTED_LOOP: block_nested_loop_join,
    JoinMethod.NESTED_LOOP: block_nested_loop_join,
}


def execute_plan(
    plan: Plan,
    ctx: ExecutionContext,
    bindings: KeyBinding,
    filters: Optional[FilterBinding] = None,
) -> Tuple[PagedFile, IOCounters]:
    """Run a plan tree against the context's stored tables.

    ``bindings`` resolves each join predicate label to the pair of field
    names it equates; scan leaves are looked up in the storage manager by
    table name.  ``filters`` resolves a scan's ``filter_label`` to a row
    predicate; a filtering scan reads its base table and materialises the
    reduced output (matching the cost model's filtered-scan accounting).
    Returns the materialised result and the I/O delta of the execution.
    """
    before = ctx.pool.counters.snapshot()
    result = _execute(plan.root, ctx, bindings, filters or {})
    delta = ctx.pool.counters.since(before)
    return result, delta


def _execute(
    node: PlanNode,
    ctx: ExecutionContext,
    bindings: KeyBinding,
    filters: FilterBinding,
) -> PagedFile:
    if isinstance(node, Scan):
        try:
            base = ctx.storage.get(node.table)
        except KeyError as exc:
            raise ExecutionError(str(exc)) from None
        if node.filter_label is None:
            return base
        if node.filter_label not in filters:
            raise ExecutionError(
                f"no filter binding for {node.filter_label!r}"
            )
        predicate = filters[node.filter_label]
        out = ctx.new_temp(base.schema)
        for row in _read_rows(ctx, base):
            if predicate(row):
                out.append_row(row)
        ctx.charge_output(out)
        return out
    if isinstance(node, Sort):
        child = _execute(node.child, ctx, bindings, filters)
        field_name = _order_field(node.sort_order, child.schema, bindings)
        result = external_sort(ctx, child, child.schema.index_of(field_name))
        if child.name.startswith("__temp"):
            ctx.drop_temp(child)
        return result
    if isinstance(node, Project):
        # Streaming projection: this engine stores fixed-width rows, so
        # the width reduction is a no-op at the tuple level — pass the
        # child through (the cost model already prices the narrower
        # pages; see estimates.project_pages).
        return _execute(node.child, ctx, bindings, filters)
    if isinstance(node, UnionNode):
        results = [
            _execute(child, ctx, bindings, filters) for child in node.inputs
        ]
        arity = len(results[0].schema.fields)
        for r in results[1:]:
            if len(r.schema.fields) != arity:
                raise ExecutionError(
                    "union arms disagree on arity: "
                    f"{arity} vs {len(r.schema.fields)} fields"
                )
        out = ctx.new_temp(results[0].schema)
        seen = set() if node.distinct else None
        for r in results:
            for row in _read_rows(ctx, r):
                if seen is not None:
                    key = tuple(row)
                    if key in seen:
                        continue
                    seen.add(key)
                out.append_row(row)
        ctx.charge_output(out)
        for r in results:
            if r.name.startswith("__temp"):
                ctx.drop_temp(r)
        return out
    assert isinstance(node, Join)
    left = _execute(node.left, ctx, bindings, filters)
    right = _execute(node.right, ctx, bindings, filters)
    if node.predicate_label not in bindings:
        raise ExecutionError(
            f"no key binding for predicate {node.predicate_label!r}"
        )
    lfield, rfield = bindings[node.predicate_label]
    try:
        lidx = left.schema.index_of(lfield)
    except KeyError:
        # The bound "left" field may live on the right input (predicate
        # labels are unordered); swap.
        lfield, rfield = rfield, lfield
        lidx = left.schema.index_of(lfield)
    ridx = right.schema.index_of(rfield)
    impl = _JOIN_IMPL[node.method]
    left_rows, right_rows = left.n_rows, right.n_rows
    result = impl(ctx, left, right, lidx, ridx)
    ctx.observations.append(
        JoinObservation(
            predicate_label=node.predicate_label,
            left_rows=left_rows,
            right_rows=right_rows,
            out_rows=result.n_rows,
        )
    )
    for tmp in (left, right):
        if tmp.name.startswith("__temp"):
            ctx.drop_temp(tmp)
    return result


def _order_field(order_label: str, schema: Schema, bindings: KeyBinding) -> str:
    if order_label in bindings:
        lfield, rfield = bindings[order_label]
        for candidate in (lfield, rfield):
            if candidate in schema.fields:
                return candidate
    if order_label in schema.fields:
        return order_label
    raise ExecutionError(
        f"cannot resolve sort order {order_label!r} against schema {schema.fields}"
    )


# ----------------------------------------------------------------------
# Index nested loop (pre-existing index on the inner relation)
# ----------------------------------------------------------------------


class HashIndex:
    """A pre-existing in-memory index: key value → pages holding matches.

    Models a secondary index that was built before the query ran, so its
    construction is not charged to the query; probes pay ``height`` page
    reads for the index descent (charged directly, the index pages are
    not part of the buffer-pool working set) plus the matching data
    pages through the pool.
    """

    def __init__(self, pf: PagedFile, key: int, height: int = 2):
        if height < 1:
            raise ValueError("index height must be >= 1")
        self.file = pf
        self.key = key
        self.height = height
        self._pages_by_key: Dict[object, List[int]] = {}
        for page_idx, page in enumerate(pf.pages):
            for row in page.rows:
                lst = self._pages_by_key.setdefault(row[key], [])
                if not lst or lst[-1] != page_idx:
                    lst.append(page_idx)

    def probe_pages(self, value) -> List[int]:
        """Page indexes containing rows with the given key value."""
        return self._pages_by_key.get(value, [])


def index_nested_loop_join(
    ctx: ExecutionContext,
    outer: PagedFile,
    inner: PagedFile,
    outer_key: int,
    inner_key: int,
    index: Optional[HashIndex] = None,
) -> PagedFile:
    """Join by probing an index on the inner relation per outer row.

    The classic access-path trade-off: for a small or highly selective
    outer, probing beats scanning the inner; for a large outer it
    degrades toward quadratic page touches (mitigated by the buffer
    pool caching hot inner pages).
    """
    if index is None:
        index = HashIndex(inner, inner_key)
    if index.file is not inner or index.key != inner_key:
        raise ExecutionError("index does not cover the join's inner key")
    out = ctx.new_temp(outer.schema.concat(inner.schema))
    for orow in _read_rows(ctx, outer):
        value = orow[outer_key]
        pages = index.probe_pages(value)
        if not pages:
            continue
        ctx.pool.counters.reads += index.height  # index descent
        for page_idx in pages:
            for irow in ctx.pool.read(inner, page_idx).rows:
                if irow[inner_key] == value:
                    out.append_row(orow + irow)
    ctx.charge_output(out)
    return out
