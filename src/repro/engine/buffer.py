"""A counting buffer pool with LRU replacement.

Every page access in the tuple-level executor goes through
:class:`BufferPool`.  A page already resident is free; a miss costs one
read I/O; writing a page costs one write I/O (write-through, so the
counters are simple and deterministic).  The pool's capacity is the
``memory`` parameter of the cost formulas, making measured I/O directly
comparable to the model's predictions (experiment E11).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Tuple

from .pages import Page, PagedFile

__all__ = ["BufferPool", "IOCounters"]


@dataclass
class IOCounters:
    """Cumulative I/O tallies."""

    reads: int = 0
    writes: int = 0

    @property
    def total(self) -> int:
        """Total page I/Os (reads + writes)."""
        return self.reads + self.writes

    def snapshot(self) -> "IOCounters":
        """Copy of the current tallies."""
        return IOCounters(reads=self.reads, writes=self.writes)

    def since(self, earlier: "IOCounters") -> "IOCounters":
        """Delta between now and an earlier snapshot."""
        return IOCounters(
            reads=self.reads - earlier.reads,
            writes=self.writes - earlier.writes,
        )


class BufferPool:
    """Fixed-capacity page cache with LRU eviction and I/O counting.

    Pages are identified by ``(file_name, page_index)``.  ``pin`` marks
    pages an operator holds in its working set (e.g. the resident hash
    partition); pinned pages are never evicted, and an operator that pins
    more pages than the capacity allows raises — the executor-level
    analogue of "does not fit in memory".
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("buffer pool capacity must be >= 1")
        self.capacity = capacity
        self.counters = IOCounters()
        self._resident: "OrderedDict[Tuple[str, int], Page]" = OrderedDict()
        self._pinned: set = set()

    # ------------------------------------------------------------------

    def read(self, pf: PagedFile, page_index: int) -> Page:
        """Fetch a page, charging a read I/O on a miss."""
        key = (pf.name, page_index)
        if key in self._resident:
            self._resident.move_to_end(key)
            return self._resident[key]
        self.counters.reads += 1
        page = pf.pages[page_index]
        self._admit(key, page)
        return page

    def write(self, pf: PagedFile, page_index: int) -> None:
        """Charge one write I/O for flushing a page (write-through)."""
        self.counters.writes += 1
        key = (pf.name, page_index)
        if key in self._resident:
            self._resident.move_to_end(key)
        else:
            self._admit(key, pf.pages[page_index])

    def pin(self, pf: PagedFile, page_index: int) -> None:
        """Protect a resident page from eviction."""
        key = (pf.name, page_index)
        if key not in self._resident:
            raise KeyError(f"page {key} not resident; read it first")
        self._pinned.add(key)

    def unpin_all(self, file_name: Optional[str] = None) -> None:
        """Release pins (for one file, or all)."""
        if file_name is None:
            self._pinned.clear()
        else:
            self._pinned = {k for k in self._pinned if k[0] != file_name}

    def evict_file(self, file_name: str) -> None:
        """Drop all of a file's pages from the pool (temp cleanup)."""
        self._pinned = {k for k in self._pinned if k[0] != file_name}
        for key in [k for k in self._resident if k[0] == file_name]:
            del self._resident[key]

    @property
    def resident_count(self) -> int:
        """Pages currently cached."""
        return len(self._resident)

    # ------------------------------------------------------------------

    def _admit(self, key: Tuple[str, int], page: Page) -> None:
        while len(self._resident) >= self.capacity:
            victim = self._find_victim()
            if victim is None:
                raise MemoryError(
                    f"buffer pool of {self.capacity} pages exhausted by pins"
                )
            del self._resident[victim]
        self._resident[key] = page
        self._resident.move_to_end(key)

    def _find_victim(self) -> Optional[Tuple[str, int]]:
        for key in self._resident:
            if key not in self._pinned:
                return key
        return None
