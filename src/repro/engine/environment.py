"""Run-time environment models: where memory distributions come from.

The paper's category-3 parameters ("properties of the run-time
environment") are "gathered from observations of the realistic deployment
environments".  Lacking a production DBMS to observe, we build the
observation process itself: a multiprogramming model in which the buffer
pages available to a query depend on how many concurrent queries happen
to be running, plus the canned distributions the paper's discussion uses
(the 80/20 bimodal example) and generic variability sweeps.

All generators return :class:`~repro.core.distributions.
DiscreteDistribution` (static case) or :class:`~repro.core.markov.
MarkovParameter` (dynamic case), ready to feed any LEC algorithm.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

import numpy as np

from ..core.distributions import (
    DiscreteDistribution,
    discretized_lognormal,
    from_samples,
    two_point,
)
from ..core.markov import MarkovParameter

__all__ = [
    "paper_bimodal_memory",
    "multiprogramming_memory",
    "multiprogramming_chain",
    "lognormal_memory",
    "observed_memory",
]


def paper_bimodal_memory() -> DiscreteDistribution:
    """The motivating example's distribution: 2000 pages 80%, 700 pages 20%."""
    return two_point(2000.0, 0.8, 700.0)


def multiprogramming_memory(
    total_pages: float,
    per_query_pages: float,
    max_concurrent: int,
    load: float,
    floor_pages: float = 64.0,
) -> DiscreteDistribution:
    """Memory left for *this* query under concurrent-query pressure.

    The number of other active queries is binomial(``max_concurrent``,
    ``load``); each consumes ``per_query_pages`` of the shared buffer
    pool.  Available memory is clamped at ``floor_pages`` (the DBMS always
    grants a minimum working set).  This is the "available memory is
    mainly determined by the number of queries being run concurrently"
    model of Section 3.5, in static form.
    """
    if not 0.0 <= load <= 1.0:
        raise ValueError("load must be in [0, 1]")
    if max_concurrent < 0:
        raise ValueError("max_concurrent must be >= 0")
    values: List[float] = []
    probs: List[float] = []
    for k in range(max_concurrent + 1):
        p = math.comb(max_concurrent, k) * load**k * (1 - load) ** (
            max_concurrent - k
        )
        mem = max(floor_pages, total_pages - k * per_query_pages)
        values.append(mem)
        probs.append(p)
    return DiscreteDistribution(values, probs)


def multiprogramming_chain(
    total_pages: float,
    per_query_pages: float,
    max_concurrent: int,
    arrival_prob: float,
    departure_prob: float,
    floor_pages: float = 64.0,
    initial_concurrent: Optional[int] = None,
) -> MarkovParameter:
    """Dynamic version: concurrency evolves between join phases.

    Between consecutive phases one query may arrive (probability
    ``arrival_prob``, when below the cap) and/or one may depart
    (probability ``departure_prob``, when any are running); the chain
    tracks the resulting memory ladder.  With ``initial_concurrent=None``
    the chain starts from its own stationary concurrency mix.
    """
    if not 0.0 <= arrival_prob <= 1.0 or not 0.0 <= departure_prob <= 1.0:
        raise ValueError("probabilities must be in [0, 1]")
    n = max_concurrent + 1
    trans = np.zeros((n, n))
    for k in range(n):
        up = arrival_prob if k < max_concurrent else 0.0
        down = departure_prob if k > 0 else 0.0
        trans[k, k] = (1 - up) * (1 - down) + up * down
        if k < max_concurrent:
            trans[k, k + 1] = up * (1 - down)
        if k > 0:
            trans[k, k - 1] = down * (1 - up)
    # Memory ladder must be strictly increasing for MarkovParameter, so
    # index states by *decreasing* concurrency.
    mems = [
        max(floor_pages, total_pages - k * per_query_pages) for k in range(n)
    ]
    order = np.argsort(mems)
    # Resolve ties in the clamped region by collapsing onto unique values.
    uniq_order: List[int] = []
    seen = set()
    for i in order:
        if mems[i] not in seen:
            seen.add(mems[i])
            uniq_order.append(int(i))
    if len(uniq_order) < n:
        # Clamping collapsed states; merge their transition mass.
        return _collapsed_chain(mems, trans, initial_concurrent, n)
    states = [mems[i] for i in uniq_order]
    perm = np.array(uniq_order)
    trans_p = trans[np.ix_(perm, perm)]
    if initial_concurrent is None:
        vec = np.full(n, 1.0 / n)
        for _ in range(500):
            vec = vec @ trans
        init = vec[perm]
    else:
        if not 0 <= initial_concurrent <= max_concurrent:
            raise ValueError("initial_concurrent out of range")
        init = np.zeros(n)
        init[list(perm).index(initial_concurrent)] = 1.0
    return MarkovParameter(states, init / init.sum(), trans_p)


def _collapsed_chain(mems, trans, initial_concurrent, n) -> MarkovParameter:
    """Merge concurrency states whose clamped memory coincides."""
    uniq = sorted(set(mems))
    idx_of = {m: i for i, m in enumerate(uniq)}
    groups = [idx_of[m] for m in mems]
    k = len(uniq)
    agg = np.zeros((k, k))
    weight = np.zeros(k)
    for a in range(n):
        weight[groups[a]] += 1.0
        for b in range(n):
            agg[groups[a], groups[b]] += trans[a, b]
    agg = agg / weight[:, None]
    if initial_concurrent is None:
        init = weight / weight.sum()
        for _ in range(500):
            init = init @ agg
    else:
        init = np.zeros(k)
        init[groups[initial_concurrent]] = 1.0
    return MarkovParameter(uniq, init / init.sum(), agg)


def lognormal_memory(
    mean_pages: float,
    cv: float,
    n_buckets: int = 8,
    rng: Optional[np.random.Generator] = None,
) -> DiscreteDistribution:
    """Right-skewed memory with a controllable coefficient of variation.

    The variability knob the E2 sweep turns: ``cv = 0`` is the certainty
    (LSC-sufficient) regime, larger ``cv`` widens the environment.
    """
    return discretized_lognormal(mean_pages, cv, n_buckets=n_buckets, rng=rng)


def observed_memory(
    samples: Sequence[float], n_buckets: int = 8
) -> DiscreteDistribution:
    """Fit a distribution from logged free-memory observations.

    The production path: the DBMS logs available buffer pages at query
    start-up and the optimizer consumes the empirical distribution.
    """
    return from_samples(samples, n_buckets=n_buckets)
