"""Result types shared by all optimizers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..plans.nodes import Plan

__all__ = ["PlanChoice", "OptimizerStats", "OptimizationResult"]


@dataclass(frozen=True)
class PlanChoice:
    """A plan together with its value under the optimizer's objective."""

    plan: Plan
    objective: float

    def __repr__(self) -> str:
        return f"PlanChoice({self.plan.signature()}, objective={self.objective:g})"


@dataclass
class OptimizerStats:
    """Instrumentation counters for an optimizer invocation.

    ``formula_evaluations`` is the paper's unit of optimization effort
    (each evaluation of a join/sort cost formula); the E4/E7 experiments
    compare it across algorithms and bucket counts.
    """

    subsets_explored: int = 0
    entries_offered: int = 0
    merge_probes: int = 0
    formula_evaluations: int = 0
    partitions_pruned: int = 0
    invocations: int = 1

    def merged_with(self, other: "OptimizerStats") -> "OptimizerStats":
        """Combine counters from two invocations (Algorithm A/B loops)."""
        return OptimizerStats(
            subsets_explored=self.subsets_explored + other.subsets_explored,
            entries_offered=self.entries_offered + other.entries_offered,
            merge_probes=self.merge_probes + other.merge_probes,
            formula_evaluations=self.formula_evaluations
            + other.formula_evaluations,
            partitions_pruned=self.partitions_pruned + other.partitions_pruned,
            invocations=self.invocations + other.invocations,
        )


@dataclass
class OptimizationResult:
    """Outcome of one optimizer run.

    ``best`` is the chosen plan; ``candidates`` holds every plan the
    algorithm scored at the final selection step (Algorithms A and B
    expose their whole candidate set here), best first.
    """

    best: PlanChoice
    candidates: List[PlanChoice] = field(default_factory=list)
    stats: OptimizerStats = field(default_factory=OptimizerStats)

    @property
    def plan(self) -> Plan:
        """Shortcut to the chosen plan."""
        return self.best.plan

    @property
    def objective(self) -> float:
        """Shortcut to the chosen plan's objective value."""
        return self.best.objective
