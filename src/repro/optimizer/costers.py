"""Costers: the objective plugged into the System-R dynamic program.

The DP engine (:mod:`repro.optimizer.systemr`) is generic over *how a
step is costed*; each of the paper's settings is one :class:`Coster`:

* :class:`PointCoster` — Φ at one fixed parameter setting.  This is the
  LSC baseline (Theorem 2.1) and, run once per bucket, the inner loop of
  Algorithms A and B.
* :class:`ExpectedCoster` — ``E_M[Φ]`` with static random memory: the
  exact-LEC Algorithm C (Theorem 3.3).
* :class:`MarkovCoster` — dynamic memory: each join phase is costed
  against the chain's marginal distribution for that phase
  (Theorem 3.4).
* :class:`MultiParamCoster` — Algorithm D: memory, input sizes and
  selectivities all distributional; carries a page-count distribution per
  relation subset and takes expectations over (M, |L|, |R|) triples,
  either naively or via the linear-time paths of
  :mod:`repro.core.expected_cost`.

Every coster exposes the same five hooks (access, join step, intermediate
write, final sort, result pages), all returning scalars in the coster's
objective; because every objective is an expectation, DP additivity and
hence optimality is preserved.
"""

from __future__ import annotations

import abc
from typing import Dict, FrozenSet, Optional

from ..core.distributions import DiscreteDistribution, point_mass
from ..core.expected_cost import (
    FAST_METHODS,
    _SurvivalTable,
    expected_external_sort_cost,
    expected_join_cost_fast,
    expected_join_cost_naive,
)
from ..core.markov import MarkovParameter
from ..costmodel.estimates import subset_size, subset_size_distribution
from ..costmodel.model import CostModel
from ..plans.nodes import Scan
from ..plans.properties import JoinMethod
from ..plans.query import JoinQuery

__all__ = [
    "Coster",
    "PointCoster",
    "ExpectedCoster",
    "MarkovCoster",
    "MultiParamCoster",
]


class Coster(abc.ABC):
    """Objective-specific costing of DP steps.

    Call :meth:`bind` with the query before use; the engine does this.
    """

    def __init__(self, cost_model: Optional[CostModel] = None):
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.query: Optional[JoinQuery] = None

    def bind(self, query: JoinQuery) -> None:
        """Attach the query and precompute anything reusable."""
        self.query = query

    @property
    def methods(self):
        """Join methods available to the engine."""
        return self.cost_model.methods

    # -- hooks ---------------------------------------------------------

    def access_cost(self, scan: Scan) -> float:
        """Cost of the leaf access path (memory independent)."""
        assert self.query is not None
        return self.cost_model.scan_node_cost(scan, self.query)

    @abc.abstractmethod
    def join_step_cost(
        self,
        method: JoinMethod,
        left_rels: FrozenSet[str],
        right_rels: FrozenSet[str],
        phase: int,
        left_presorted: bool = False,
        right_presorted: bool = False,
    ) -> float:
        """Objective value of joining two relation subsets with ``method``.

        The presorted flags grant sort-merge its interesting-order credit
        when an input already carries the join's sort order.
        """

    def _join_formula(
        self,
        method: JoinMethod,
        left_pages: float,
        right_pages: float,
        memory: float,
        left_presorted: bool,
        right_presorted: bool,
    ) -> float:
        """Dispatch to the order-aware SM formula when credit applies."""
        if method is JoinMethod.SORT_MERGE and (left_presorted or right_presorted):
            return self.cost_model.sort_merge_cost_ordered(
                left_pages, right_pages, memory, left_presorted, right_presorted
            )
        return self.cost_model.join_cost(method, left_pages, right_pages, memory)

    @abc.abstractmethod
    def write_cost(self, rels: FrozenSet[str]) -> float:
        """Objective value of materialising the subset's result pages."""

    @abc.abstractmethod
    def final_sort_cost(self, rels: FrozenSet[str], phase: int) -> float:
        """Objective value of the enforcer sort over the subset's result."""

    # -- shared helpers --------------------------------------------------

    def _pages(self, rels: FrozenSet[str]) -> float:
        assert self.query is not None
        return subset_size(rels, self.query).pages

    def supports_bushy(self) -> bool:
        """Whether this objective is well-defined for bushy plans."""
        return True


class PointCoster(Coster):
    """Φ at a single parameter setting — the LSC view.

    ``memory`` is the one specific value the classical optimizer assumes
    (the mean or mode of the true distribution).
    """

    def __init__(self, memory: float, cost_model: Optional[CostModel] = None):
        super().__init__(cost_model)
        if memory <= 0:
            raise ValueError("memory must be positive")
        self.memory = float(memory)

    def join_step_cost(
        self, method, left_rels, right_rels, phase,
        left_presorted=False, right_presorted=False,
    ):
        return self._join_formula(
            method,
            self._pages(left_rels),
            self._pages(right_rels),
            self.memory,
            left_presorted,
            right_presorted,
        )

    def write_cost(self, rels):
        return self._pages(rels)

    def final_sort_cost(self, rels, phase):
        return self.cost_model.sort_cost(self._pages(rels), self.memory)


class ExpectedCoster(Coster):
    """``E_M[Φ]`` with static random memory — Algorithm C's objective."""

    def __init__(
        self,
        memory: DiscreteDistribution,
        cost_model: Optional[CostModel] = None,
    ):
        super().__init__(cost_model)
        self.memory = memory

    def join_step_cost(
        self, method, left_rels, right_rels, phase,
        left_presorted=False, right_presorted=False,
    ):
        lp = self._pages(left_rels)
        rp = self._pages(right_rels)
        return self.memory.expectation(
            lambda m: self._join_formula(
                method, lp, rp, m, left_presorted, right_presorted
            )
        )

    def write_cost(self, rels):
        return self._pages(rels)

    def final_sort_cost(self, rels, phase):
        pages = self._pages(rels)
        return self.memory.expectation(
            lambda m: self.cost_model.sort_cost(pages, m)
        )


class MarkovCoster(Coster):
    """Dynamic memory: phase ``k`` costed under the chain's ``marginal(k)``.

    Exact for left-deep plans because every candidate for a subset of size
    ``s`` schedules its joins in the same phases ``0..s-2`` and
    expectation distributes over the phase-cost sum (Theorem 3.4).
    """

    def __init__(
        self,
        chain: MarkovParameter,
        cost_model: Optional[CostModel] = None,
    ):
        super().__init__(cost_model)
        if self.cost_model.pipelined_methods:
            raise ValueError(
                "pipelined joins merge execution phases; the per-phase "
                "Markov objective does not support them"
            )
        self.chain = chain

    def join_step_cost(
        self, method, left_rels, right_rels, phase,
        left_presorted=False, right_presorted=False,
    ):
        lp = self._pages(left_rels)
        rp = self._pages(right_rels)
        marginal = self.chain.marginal(phase)
        return marginal.expectation(
            lambda m: self._join_formula(
                method, lp, rp, m, left_presorted, right_presorted
            )
        )

    def write_cost(self, rels):
        return self._pages(rels)

    def final_sort_cost(self, rels, phase):
        pages = self._pages(rels)
        marginal = self.chain.marginal(phase)
        return marginal.expectation(
            lambda m: self.cost_model.sort_cost(pages, m)
        )

    def supports_bushy(self) -> bool:
        """Bushy trees have no canonical phase order; restrict to left-deep."""
        return False


class MultiParamCoster(Coster):
    """Algorithm D: sizes and selectivities uncertain alongside memory.

    Per dag node the paper carries exactly four distributions — memory,
    ``|B_j|``, ``|A_j|`` and the join selectivity.  Here the first three
    feed :meth:`join_step_cost` (a triple-bucket expectation) and the
    fourth is folded into the cached subset size distributions.

    Parameters
    ----------
    memory:
        Static memory distribution.
    max_buckets:
        Rebucketing width for propagated size distributions
        (Section 3.6.3).
    fast:
        Use the linear-time expected-cost paths where available instead
        of the naive ``b_M·b_L·b_R`` loop.
    """

    def __init__(
        self,
        memory: DiscreteDistribution,
        cost_model: Optional[CostModel] = None,
        max_buckets: int = 16,
        fast: bool = False,
    ):
        super().__init__(cost_model)
        self.memory = memory
        self.max_buckets = max_buckets
        self.fast = fast
        self._survival = _SurvivalTable(memory)
        self._size_cache: Dict[FrozenSet[str], DiscreteDistribution] = {}

    def bind(self, query: JoinQuery) -> None:
        super().bind(query)
        self._size_cache.clear()

    def size_distribution(self, rels: FrozenSet[str]) -> DiscreteDistribution:
        """Cached page-count distribution of a relation subset."""
        assert self.query is not None
        rels = frozenset(rels)
        if rels not in self._size_cache:
            self._size_cache[rels] = subset_size_distribution(
                rels, self.query, max_buckets=self.max_buckets
            )
        return self._size_cache[rels]

    def join_step_cost(
        self, method, left_rels, right_rels, phase,
        left_presorted=False, right_presorted=False,
    ):
        ld = self.size_distribution(left_rels)
        rd = self.size_distribution(right_rels)
        presorted = left_presorted or right_presorted
        if self.fast and method in FAST_METHODS and not presorted:
            return expected_join_cost_fast(
                method, ld, rd, self.memory, survival=self._survival
            )
        if not presorted:
            return expected_join_cost_naive(
                self.cost_model.join_cost, method, ld, rd, self.memory
            )
        # Order-aware sort-merge: no linear-time path; triple loop with
        # the presorted formula.
        def fn(_method, l, r, m):
            return self._join_formula(
                _method, l, r, m, left_presorted, right_presorted
            )

        return expected_join_cost_naive(fn, method, ld, rd, self.memory)

    def write_cost(self, rels):
        return self.size_distribution(rels).mean()

    def final_sort_cost(self, rels, phase):
        return expected_external_sort_cost(
            self.size_distribution(rels), self.memory, self.cost_model.sort_cost
        )
