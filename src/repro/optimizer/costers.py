"""Costers: the objective plugged into the System-R dynamic program.

The DP engine (:mod:`repro.optimizer.systemr`) is generic over *how a
step is costed*; each of the paper's settings is one :class:`Coster`:

* :class:`PointCoster` — Φ at one fixed parameter setting.  This is the
  LSC baseline (Theorem 2.1) and, run once per bucket, the inner loop of
  Algorithms A and B.
* :class:`ExpectedCoster` — ``E_M[Φ]`` with static random memory: the
  exact-LEC Algorithm C (Theorem 3.3).
* :class:`MarkovCoster` — dynamic memory: each join phase is costed
  against the chain's marginal distribution for that phase
  (Theorem 3.4).
* :class:`MultiParamCoster` — Algorithm D: memory, input sizes and
  selectivities all distributional; carries a page-count distribution per
  relation subset and takes expectations over (M, |L|, |R|) triples,
  either naively or via the linear-time paths of
  :mod:`repro.core.expected_cost`.

Every coster exposes the same five hooks (access, join step, intermediate
write, final sort, result pages), all returning scalars in the coster's
objective; because every objective is an expectation, DP additivity and
hence optimality is preserved.

Shared state lives in an :class:`~repro.core.context.OptimizationContext`
attached at :meth:`Coster.bind` time: subset sizes and size
distributions are memoized there instead of in per-coster private dicts,
survival tables are fetched from the context, and every step cost is
memoized under a key spanning the coster's full parameter identity —
so a context threaded across several optimizer invocations (Algorithms
A-D over one query, a parametric sweep, repeated facade calls) answers
repeated expectations from cache.  A coster bound without an explicit
context builds a private one, which reproduces the historical
(per-invocation) behavior exactly.
"""

from __future__ import annotations

import abc
from typing import FrozenSet, Optional, Sequence, Tuple

import numpy as np

from ..core.context import OptimizationContext
from ..core.distributions import DiscreteDistribution
from ..core.expected_cost import (
    FAST_METHODS,
    expected_external_sort_cost_model,
    expected_join_cost_naive,
    expected_join_cost_naive_model,
)
from ..core.markov import MarkovParameter
from ..core.parallel import WorkerPool, chunk_spans
from ..costmodel.estimates import project_pages
from ..costmodel.model import CostModel
from ..costmodel import formulas
from ..plans.nodes import Scan
from ..plans.properties import JoinMethod
from ..plans.query import JoinQuery

#: One join step the DP is about to cost: ``(method, left_rels,
#: right_rels, phase, left_presorted, right_presorted)``.
StepRequest = Tuple[JoinMethod, FrozenSet[str], FrozenSet[str], int, bool, bool]

__all__ = [
    "Coster",
    "PointCoster",
    "ExpectedCoster",
    "MarkovCoster",
    "MultiParamCoster",
]


class Coster(abc.ABC):
    """Objective-specific costing of DP steps.

    Call :meth:`bind` with the query before use; the engine does this.

    ``requires_ordered_phases`` declares whether the objective is only
    well-defined when every candidate plan schedules its joins in the
    canonical phases ``0..s-2`` per subset — the engine matches it
    against :attr:`~repro.plans.space.PlanSpace.ordered_phases`.
    """

    #: Phase-indexed objectives (Markov) need canonical phase numbering.
    requires_ordered_phases: bool = False

    def __init__(self, cost_model: Optional[CostModel] = None):
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.query: Optional[JoinQuery] = None
        self.context: Optional[OptimizationContext] = None

    def bind(
        self, query: JoinQuery, context: Optional[OptimizationContext] = None
    ) -> None:
        """Attach the query and the shared context.

        Without an explicit ``context`` a private one is created, so the
        coster starts from a cold cache — the historical behavior.  A
        supplied context must have been built for this exact query
        (checked via its statistics fingerprint); a mismatch falls back
        to a fresh context rather than serving stale sizes.
        """
        self.query = query
        if context is not None and context.matches(query):
            self.context = context
        else:
            self.context = OptimizationContext(query, cost_model=self.cost_model)

    @property
    def methods(self):
        """Join methods available to the engine."""
        return self.cost_model.methods

    def _memo_key(self) -> tuple:
        """The coster-identity prefix for context step-cost keys.

        Subclasses return a tuple covering every parameter that affects
        their numeric output; two costers with equal prefixes must
        produce identical costs for identical steps.
        """
        raise NotImplementedError

    # -- hooks ---------------------------------------------------------

    def access_cost(self, scan: Scan) -> float:
        """Cost of the leaf access path (memory independent)."""
        assert self.query is not None
        return self.cost_model.scan_node_cost(scan, self.query)

    @abc.abstractmethod
    def join_step_cost(
        self,
        method: JoinMethod,
        left_rels: FrozenSet[str],
        right_rels: FrozenSet[str],
        phase: int,
        left_presorted: bool = False,
        right_presorted: bool = False,
    ) -> float:
        """Objective value of joining two relation subsets with ``method``.

        The presorted flags grant sort-merge its interesting-order credit
        when an input already carries the join's sort order.
        """

    def _join_formula(
        self,
        method: JoinMethod,
        left_pages: float,
        right_pages: float,
        memory: float,
        left_presorted: bool,
        right_presorted: bool,
    ) -> float:
        """Dispatch to the order-aware SM formula when credit applies."""
        if method is JoinMethod.SORT_MERGE and (left_presorted or right_presorted):
            return self.cost_model.sort_merge_cost_ordered(
                left_pages, right_pages, memory, left_presorted, right_presorted
            )
        return self.cost_model.join_cost(method, left_pages, right_pages, memory)

    def prefetch_join_steps(
        self,
        requests: Sequence[StepRequest],
        pool: Optional[WorkerPool] = None,
    ) -> None:
        """Batch-evaluate a DP level's join steps into the context memo.

        The engine calls this once per DP level with every join step the
        level's subsets will cost; implementations may evaluate the
        not-yet-memoized ones in a single vectorized pass so subsequent
        :meth:`join_step_cost` calls are memo hits.  The contract is
        strict: a prefetched value must be **bit-identical** to what the
        on-demand path would have computed, and ``eval_count`` accounting
        must match one scalar evaluation per grid point.  The base
        implementation is a no-op (everything computes on demand).

        ``pool`` opts the level batch into parallel evaluation: the
        pending steps are chunked deterministically
        (:func:`~repro.core.parallel.chunk_spans`), each chunk runs the
        *pure* formula kernels in a worker, and the chunk results are
        merged in span order — so values, memo contents and
        ``eval_count`` (charged by the coordinating thread via
        :meth:`CostModel.note_evaluations`) all stay bit-identical to
        the sequential prefetch.  Implementations free to ignore it
        (e.g. :class:`PointCoster`, whose steps are one grid point each)
        must still accept the argument.
        """

    def _join_step_key(
        self,
        method: JoinMethod,
        left_rels: FrozenSet[str],
        right_rels: FrozenSet[str],
        phase: int,
        left_presorted: bool,
        right_presorted: bool,
    ) -> tuple:
        """The context memo key :meth:`join_step_cost` files a step under.

        Must agree between the on-demand path and :meth:`
        prefetch_join_steps` so prefetched values are found.  Phase is
        ignored by default; phase-indexed objectives fold it in.
        """
        return (
            *self._memo_key(), "join",
            method, left_rels, right_rels, left_presorted, right_presorted,
        )

    @abc.abstractmethod
    def write_cost(self, rels: FrozenSet[str]) -> float:
        """Objective value of materialising the subset's result pages."""

    @abc.abstractmethod
    def final_sort_cost(self, rels: FrozenSet[str], phase: int) -> float:
        """Objective value of the enforcer sort over the subset's result."""

    # -- shared helpers --------------------------------------------------

    def _pages(self, rels: FrozenSet[str]) -> float:
        assert self.context is not None, "coster used before bind()"
        return self.context.subset_pages(rels)

    def _step(self, key: tuple, compute) -> float:
        """Memoize one step cost in the bound context."""
        assert self.context is not None, "coster used before bind()"
        return self.context.step_cost(key, compute)

    def supports_bushy(self) -> bool:
        """Whether this objective is well-defined for bushy plans.

        Compatibility wrapper: the capability now lives on
        :class:`~repro.plans.space.PlanSpace` (``ordered_phases``) matched
        against :attr:`requires_ordered_phases`.
        """
        return not self.requires_ordered_phases

    def pages_lower_bound(self, rels: FrozenSet[str]) -> float:
        """A lower bound on the page count this coster charges for ``rels``.

        Used by the DP's Chen & Schneider partition prune: every join
        method reads both inputs at least once, so two input lower bounds
        sum to a sound lower bound on any join step.  Point-valued
        costers return the exact page count; distributional costers the
        distribution's smallest support point.
        """
        return self._pages(rels)

    # -- union (SPJU) hooks ---------------------------------------------

    def union_overhead(self, arms, distinct: bool) -> float:
        """Objective value charged at a union root over costed arms.

        ``arms`` is a sequence of ``(rels, projection_ratio,
        materialised)`` triples, one per arm.  UNION ALL streams and is
        free; DISTINCT charges each materialised arm's projected write
        plus one external sort over the combined projected pages —
        mirroring :meth:`repro.costmodel.model.CostModel._union_cost`.
        """
        if not distinct:
            return 0.0
        total = 0.0
        total_pages = 0.0
        for rels, ratio, materialised in arms:
            pages = project_pages(self._pages(rels), ratio)
            if materialised:
                total += pages
            total_pages += pages
        return total + self._union_sort_cost(total_pages)

    def _union_sort_cost(self, pages: float) -> float:
        """Objective value of the dedup sort over ``pages``."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support distinct unions"
        )


def _pending_steps(context, coster, requests):
    """Deduped ``(memo_key, request)`` pairs for not-yet-memoized steps."""
    seen = set()
    out = []
    for req in requests:
        key = coster._join_step_key(req[0], req[1], req[2], req[3], req[4], req[5])
        if key in seen or context.has_step_cost(key):
            continue
        seen.add(key)
        out.append((key, req))
    return out


def _pending_by_formula(context, coster, requests):
    """Pending steps grouped by ``(method, left_presorted, right_presorted)``.

    Steps in one group evaluate the same formula, so they can share one
    vectorized grid.
    """
    groups = {}
    for key, req in _pending_steps(context, coster, requests):
        groups.setdefault((req[0], req[4], req[5]), []).append((key, req))
    return groups


def _store_steps(context, keys, costs) -> None:
    """File batch-computed step costs under their memo keys.

    Routed through :meth:`OptimizationContext.step_cost` so each stored
    step counts as one miss — exactly what on-demand first evaluation
    would have recorded.
    """
    for key, cost in zip(keys, costs):
        context.step_cost(key, lambda _c=cost: float(_c))


#: below this many pending pairs a level batch stays sequential — the
#: pool submit/gather overhead would dominate the kernel time.
_MIN_PARALLEL_STEPS = 16


def _expected_join_rows_pure(
    method: JoinMethod,
    left_pages: np.ndarray,
    right_pages: np.ndarray,
    memory_values: np.ndarray,
    memory_probs: np.ndarray,
    left_presorted: bool,
    right_presorted: bool,
):
    """Counting-free grid half of :func:`_expected_join_rows`.

    Module-level and built on the pure ``formulas`` kernels (no
    ``eval_count`` side effects) so worker pools can run it from threads
    without racing the shared counter — and from processes, where an
    in-worker increment would simply be lost.  The coordinator charges
    the count afterwards via :meth:`CostModel.note_evaluations`.
    """
    shape = (left_pages.size, memory_values.size)
    grid_l = np.broadcast_to(left_pages[:, None], shape).ravel()
    grid_r = np.broadcast_to(right_pages[:, None], shape).ravel()
    grid_m = np.broadcast_to(memory_values[None, :], shape).ravel()
    if method is JoinMethod.SORT_MERGE and (left_presorted or right_presorted):
        rows = formulas.sort_merge_cost_with_orders_vec(
            grid_l, grid_r, grid_m, left_presorted, right_presorted
        )
    else:
        rows = formulas.join_cost_vec(method, grid_l, grid_r, grid_m)
    return [float(np.dot(row, memory_probs)) for row in rows.reshape(shape)]


def _expected_join_rows(
    cost_model: CostModel,
    method: JoinMethod,
    left_pages: np.ndarray,
    right_pages: np.ndarray,
    memory: DiscreteDistribution,
    left_presorted: bool,
    right_presorted: bool,
    pool: Optional[WorkerPool] = None,
):
    """``E_M[Φ]`` per (left, right) pair, one formula grid for all pairs.

    Each pair's expectation is finished with the same ``np.dot`` against
    the memory pmf that :meth:`DiscreteDistribution.expectation` uses, so
    the results are bit-identical to the scalar
    ``memory.expectation(lambda m: formula(...))`` path.

    With a ``pool``, the pairs are split into deterministic contiguous
    chunks and each chunk's grid is evaluated by a worker; every pair's
    result depends only on its own grid row, so the chunked values — and
    the span-ordered merge — are bit-identical to the one-grid call.
    ``eval_count`` advances by the full grid size either way.
    """
    mv = memory.values
    mp = memory.probs
    n = left_pages.size
    if pool is not None and not pool.closed and n >= _MIN_PARALLEL_STEPS:
        spans = chunk_spans(n, pool.size)
        if len(spans) > 1:
            tasks = [
                (method, left_pages[a:b], right_pages[a:b], mv, mp,
                 left_presorted, right_presorted)
                for a, b in spans
            ]
            parts = pool.map_ordered(_expected_join_rows_pure, tasks)
            cost_model.note_evaluations(n * mv.size)
            return [cost for part in parts for cost in part]
    costs = _expected_join_rows_pure(
        method, left_pages, right_pages, mv, mp, left_presorted, right_presorted
    )
    cost_model.note_evaluations(n * mv.size)
    return costs


class PointCoster(Coster):
    """Φ at a single parameter setting — the LSC view.

    ``memory`` is the one specific value the classical optimizer assumes
    (the mean or mode of the true distribution).
    """

    def __init__(self, memory: float, cost_model: Optional[CostModel] = None):
        super().__init__(cost_model)
        if memory <= 0:
            raise ValueError("memory must be positive")
        self.memory = float(memory)

    def _memo_key(self) -> tuple:
        return ("point", self.memory)

    def join_step_cost(
        self, method, left_rels, right_rels, phase,
        left_presorted=False, right_presorted=False,
    ):
        key = self._join_step_key(
            method, left_rels, right_rels, phase, left_presorted, right_presorted
        )
        return self._step(
            key,
            lambda: self._join_formula(
                method,
                self._pages(left_rels),
                self._pages(right_rels),
                self.memory,
                left_presorted,
                right_presorted,
            ),
        )

    def prefetch_join_steps(self, requests, pool=None):
        """One ``join_cost_many`` grid per method for the whole level.

        The vectorized formulas are bit-identical to the scalar ones per
        element, so the memoized values match what on-demand evaluation
        would store; ``eval_count`` advances by one per step either way.
        ``pool`` is accepted but unused: a point step is one grid point,
        so the whole level is a single cheap array op already.
        """
        assert self.context is not None, "coster used before bind()"
        for (method, lps, rps), group in _pending_by_formula(
            self.context, self, requests
        ).items():
            keys = [key for key, _ in group]
            lp = np.array([self._pages(req[1]) for _, req in group])
            rp = np.array([self._pages(req[2]) for _, req in group])
            mem = np.full(lp.size, self.memory)
            if method is JoinMethod.SORT_MERGE and (lps or rps):
                costs = self.cost_model.sort_merge_cost_ordered_many(
                    lp, rp, mem, lps, rps
                )
            else:
                costs = self.cost_model.join_cost_many(method, lp, rp, mem)
            _store_steps(self.context, keys, costs)

    def write_cost(self, rels):
        return self._pages(rels)

    def final_sort_cost(self, rels, phase):
        key = (*self._memo_key(), "sort", rels)
        return self._step(
            key, lambda: self.cost_model.sort_cost(self._pages(rels), self.memory)
        )

    def _union_sort_cost(self, pages):
        return self.cost_model.sort_cost(pages, self.memory)


class ExpectedCoster(Coster):
    """``E_M[Φ]`` with static random memory — Algorithm C's objective."""

    def __init__(
        self,
        memory: DiscreteDistribution,
        cost_model: Optional[CostModel] = None,
    ):
        super().__init__(cost_model)
        self.memory = memory

    def _memo_key(self) -> tuple:
        return ("expected", self.memory)

    def join_step_cost(
        self, method, left_rels, right_rels, phase,
        left_presorted=False, right_presorted=False,
    ):
        key = self._join_step_key(
            method, left_rels, right_rels, phase, left_presorted, right_presorted
        )

        def compute() -> float:
            lp = self._pages(left_rels)
            rp = self._pages(right_rels)
            return self.memory.expectation(
                lambda m: self._join_formula(
                    method, lp, rp, m, left_presorted, right_presorted
                )
            )

        return self._step(key, compute)

    def prefetch_join_steps(self, requests, pool=None):
        """One (steps × memory-buckets) formula grid per method."""
        assert self.context is not None, "coster used before bind()"
        for (method, lps, rps), group in _pending_by_formula(
            self.context, self, requests
        ).items():
            keys = [key for key, _ in group]
            lp = np.array([self._pages(req[1]) for _, req in group])
            rp = np.array([self._pages(req[2]) for _, req in group])
            costs = _expected_join_rows(
                self.cost_model, method, lp, rp, self.memory, lps, rps,
                pool=pool,
            )
            _store_steps(self.context, keys, costs)

    def write_cost(self, rels):
        return self._pages(rels)

    def final_sort_cost(self, rels, phase):
        key = (*self._memo_key(), "sort", rels)

        def compute() -> float:
            pages = self._pages(rels)
            return self.memory.expectation(
                lambda m: self.cost_model.sort_cost(pages, m)
            )

        return self._step(key, compute)

    def _union_sort_cost(self, pages):
        return self.memory.expectation(
            lambda m: self.cost_model.sort_cost(pages, m)
        )


class MarkovCoster(Coster):
    """Dynamic memory: phase ``k`` costed under the chain's ``marginal(k)``.

    Exact for ordered-phase plan spaces (left-deep, zig-zag) because
    every candidate for a subset of size ``s`` schedules its joins in the
    same phases ``0..s-2`` and expectation distributes over the
    phase-cost sum (Theorem 3.4).
    """

    requires_ordered_phases = True

    def __init__(
        self,
        chain: MarkovParameter,
        cost_model: Optional[CostModel] = None,
    ):
        super().__init__(cost_model)
        if self.cost_model.pipelined_methods:
            raise ValueError(
                "pipelined joins merge execution phases; the per-phase "
                "Markov objective does not support them"
            )
        self.chain = chain

    def _memo_key(self) -> tuple:
        # Chains hash by identity; the key keeps the chain object alive,
        # so a context outliving the coster still resolves correctly.
        return ("markov", self.chain)

    def _join_step_key(
        self, method, left_rels, right_rels, phase, left_presorted, right_presorted
    ):
        return (
            *self._memo_key(), "join", phase,
            method, left_rels, right_rels, left_presorted, right_presorted,
        )

    def join_step_cost(
        self, method, left_rels, right_rels, phase,
        left_presorted=False, right_presorted=False,
    ):
        key = self._join_step_key(
            method, left_rels, right_rels, phase, left_presorted, right_presorted
        )

        def compute() -> float:
            lp = self._pages(left_rels)
            rp = self._pages(right_rels)
            marginal = self.chain.marginal(phase)
            return marginal.expectation(
                lambda m: self._join_formula(
                    method, lp, rp, m, left_presorted, right_presorted
                )
            )

        return self._step(key, compute)

    def prefetch_join_steps(self, requests, pool=None):
        """Like :class:`ExpectedCoster` but grouped by execution phase.

        Each phase is costed under its own marginal distribution, so the
        phase joins the grouping key alongside the formula identity.
        """
        assert self.context is not None, "coster used before bind()"
        groups = {}
        for key, req in _pending_steps(self.context, self, requests):
            groups.setdefault((req[0], req[3], req[4], req[5]), []).append((key, req))
        for (method, phase, lps, rps), group in groups.items():
            keys = [key for key, _ in group]
            lp = np.array([self._pages(req[1]) for _, req in group])
            rp = np.array([self._pages(req[2]) for _, req in group])
            costs = _expected_join_rows(
                self.cost_model, method, lp, rp, self.chain.marginal(phase),
                lps, rps, pool=pool,
            )
            _store_steps(self.context, keys, costs)

    def write_cost(self, rels):
        return self._pages(rels)

    def final_sort_cost(self, rels, phase):
        key = (*self._memo_key(), "sort", phase, rels)

        def compute() -> float:
            pages = self._pages(rels)
            marginal = self.chain.marginal(phase)
            return marginal.expectation(
                lambda m: self.cost_model.sort_cost(pages, m)
            )

        return self._step(key, compute)


class MultiParamCoster(Coster):
    """Algorithm D: sizes and selectivities uncertain alongside memory.

    Per dag node the paper carries exactly four distributions — memory,
    ``|B_j|``, ``|A_j|`` and the join selectivity.  Here the first three
    feed :meth:`join_step_cost` (a triple-bucket expectation) and the
    fourth is folded into the context-cached subset size distributions.

    Parameters
    ----------
    memory:
        Static memory distribution.
    max_buckets:
        Rebucketing width for propagated size distributions
        (Section 3.6.3).
    fast:
        Use the linear-time expected-cost paths where available instead
        of the naive ``b_M·b_L·b_R`` loop.
    """

    def __init__(
        self,
        memory: DiscreteDistribution,
        cost_model: Optional[CostModel] = None,
        max_buckets: int = 16,
        fast: bool = False,
    ):
        super().__init__(cost_model)
        self.memory = memory
        self.max_buckets = max_buckets
        self.fast = fast
        self._survival = None

    def bind(
        self, query: JoinQuery, context: Optional[OptimizationContext] = None
    ) -> None:
        super().bind(query, context)
        self._survival = self.context.survival_table(self.memory)

    def _memo_key(self) -> tuple:
        return ("multiparam", self.memory, self.max_buckets, self.fast)

    def size_distribution(self, rels: FrozenSet[str]) -> DiscreteDistribution:
        """Context-cached page-count distribution of a relation subset."""
        assert self.context is not None, "coster used before bind()"
        return self.context.size_distribution(rels, max_buckets=self.max_buckets)

    def _join_step_key(
        self, method, left_rels, right_rels, phase, left_presorted, right_presorted
    ):
        return (
            *self._memo_key(), "join",
            method, frozenset(left_rels), frozenset(right_rels),
            left_presorted, right_presorted,
        )

    def join_step_cost(
        self, method, left_rels, right_rels, phase,
        left_presorted=False, right_presorted=False,
    ):
        key = self._join_step_key(
            method, left_rels, right_rels, phase, left_presorted, right_presorted
        )

        def compute() -> float:
            ld = self.size_distribution(left_rels)
            rd = self.size_distribution(right_rels)
            presorted = left_presorted or right_presorted
            if self.fast and method in FAST_METHODS and not presorted:
                # Routed through the context's batched kernel memo: two
                # subsets with value-equal size distributions share one
                # evaluation, and level prefetches land in the same memo.
                return self.context.batched_join_costs(
                    [(method, ld, rd)], self.memory
                )[0]
            if not presorted:
                return expected_join_cost_naive_model(
                    self.cost_model, method, ld, rd, self.memory
                )
            # Order-aware sort-merge: no linear-time path; triple loop
            # with the presorted formula.
            def fn(_method, l, r, m):
                return self._join_formula(
                    _method, l, r, m, left_presorted, right_presorted
                )

            return expected_join_cost_naive(fn, method, ld, rd, self.memory)

        return self._step(key, compute)

    def prefetch_join_steps(self, requests, pool=None):
        """Feed a whole DP level's fast-path joins to the batched kernel.

        Only the linear-time methods batch (the naive triple-grid path is
        already one array op per step); presorted sort-merge steps keep
        their order-aware scalar route.  Values land in the context's
        ``fastjoin`` memo, so the per-step ``join_step_cost`` calls that
        follow find them without touching the kernel again.  A worker
        pool fans the kernel misses out chunk-wise (see
        :func:`repro.core.expected_cost.expected_join_costs_batched_parallel`).
        """
        if not self.fast:
            return
        assert self.context is not None, "coster used before bind()"
        batch = []
        for key, req in _pending_steps(self.context, self, requests):
            method, left_rels, right_rels, _, lps, rps = req
            if method not in FAST_METHODS or lps or rps:
                continue
            batch.append(
                (
                    method,
                    self.size_distribution(left_rels),
                    self.size_distribution(right_rels),
                )
            )
        if batch:
            self.context.batched_join_costs(batch, self.memory, pool=pool)

    def write_cost(self, rels):
        key = (*self._memo_key(), "write", frozenset(rels))
        return self._step(key, lambda: self.size_distribution(rels).mean())

    def final_sort_cost(self, rels, phase):
        key = (*self._memo_key(), "sort", frozenset(rels))
        return self._step(
            key,
            lambda: expected_external_sort_cost_model(
                self.cost_model, self.size_distribution(rels), self.memory
            ),
        )

    def pages_lower_bound(self, rels):
        """Smallest support point of the subset's (clamped) distribution."""
        return self.size_distribution(rels).min()

    def union_overhead(self, arms, distinct):
        """Distributional DISTINCT overhead: writes + expected dedup sort.

        Arm size distributions are scaled by their projection ratios and
        the convolved union size is clamped to the summed Chen &
        Schneider bounds before the expected external-sort cost is taken
        — the C6 rebucketing of the convolution stays inside the
        provable range.
        """
        if not distinct:
            return 0.0
        assert self.context is not None, "coster used before bind()"
        total = 0.0
        arm_dists = []
        lo_sum = 0.0
        hi_sum = 0.0
        for rels, ratio, materialised in arms:
            dist = self.size_distribution(rels)
            lo, hi = self.context.subset_bounds(rels)
            if ratio < 1.0:
                dist = dist.scale(ratio).clip(lo=1.0)
                lo, hi = max(1.0, lo * ratio), max(1.0, hi * ratio)
            if materialised:
                total += dist.mean()
            arm_dists.append(dist)
            lo_sum += lo
            hi_sum += hi
        acc = arm_dists[0]
        for nxt in arm_dists[1:]:
            acc = self.context.rebucket(
                self.context.convolve(acc, nxt), self.max_buckets
            )
        acc = acc.clip(lo=lo_sum * (1.0 - 1e-9), hi=hi_sum * (1.0 + 1e-9))
        return total + expected_external_sort_cost_model(
            self.cost_model, acc, self.memory
        )
