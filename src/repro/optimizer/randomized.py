"""Randomized join-order search under any LEC objective.

Section 1 of the paper: dynamic programming handles the plan-space
explosion, "although randomized algorithms have also been proposed
[Swa89, IK90].  As we shall see, they apply in our approach too."  This
module makes good on that: iterative improvement and simulated annealing
over left-deep plans, generic over an *objective function* — a point
cost, an expected cost, a Markov objective, a risk score — so every
uncertainty model in the library scales past the DP's exponential
subset table.

Moves (the classic set):

* ``swap`` — exchange two relations in the join order;
* ``cycle`` — rotate three positions;
* ``method`` — change one join's physical method.

Orders that would require a cross product are rejected during move
generation (unless allowed), keeping the walk inside the connected
space.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..core.parallel import get_pool
from ..costmodel.model import DEFAULT_METHODS
from ..plans.nodes import Join, Plan, PlanNode, Scan, Sort
from ..plans.properties import JoinMethod
from ..plans.query import JoinQuery
from ..plans.space import PlanSpace
from ..plans.spju import UnionQuery
from .result import PlanChoice

__all__ = ["RandomizedResult", "iterative_improvement", "simulated_annealing"]

Objective = Callable[[Plan], float]


@dataclass
class _State:
    """Search state: a join tree plus a method per internal node.

    ``tree`` is ``None`` for the classic left-deep search (the order +
    method vector is the whole state, preserving the historical RNG
    stream exactly); for enlarged spaces it is a nested
    ``(left, right)``-tuple over relation names and ``order`` caches the
    leaf sequence for the swap/cycle moves.
    """

    order: List[str]
    methods: List[JoinMethod]
    tree: Optional[tuple] = None


@dataclass
class RandomizedResult:
    """Outcome of a randomized search."""

    best: PlanChoice
    evaluations: int
    restarts: int

    @property
    def plan(self) -> Plan:
        """Shortcut to the chosen plan."""
        return self.best.plan

    @property
    def objective(self) -> float:
        """Shortcut to the chosen plan's objective value."""
        return self.best.objective


def _build_plan(state: _State, query: JoinQuery) -> Optional[Plan]:
    """Left-deep plan from an order + method vector; None if disconnected."""
    node: PlanNode = Scan(table=state.order[0])
    group = frozenset((state.order[0],))
    for rel, method in zip(state.order[1:], state.methods):
        preds = query.predicates_between(group, rel)
        if not preds:
            return None
        node = Join(
            left=node,
            right=Scan(table=rel),
            method=method,
            predicate_label=preds[0].label,
            order_label=preds[0].order_label,
        )
        group = group | {rel}
    if query.required_order is not None and node.order != query.required_order:
        node = Sort(child=node, sort_order=query.required_order)
    return Plan(node)


def _tree_leaves(tree) -> List[str]:
    if isinstance(tree, str):
        return [tree]
    return _tree_leaves(tree[0]) + _tree_leaves(tree[1])


def _tree_with_leaves(tree, leaves: List[str]):
    """Rebuild ``tree``'s structure over a new leaf sequence (same length)."""
    it = iter(leaves)

    def go(node):
        if isinstance(node, str):
            return next(it)
        return (go(node[0]), go(node[1]))

    return go(tree)


def _tree_mutate_shape(tree, rng: np.random.Generator):
    """One random structural move: rotate at, or flip, an internal node."""
    internals: List[tuple] = []

    def collect(node):
        if isinstance(node, str):
            return
        internals.append(node)
        collect(node[0])
        collect(node[1])

    collect(tree)
    target = internals[int(rng.integers(len(internals)))]
    move = int(rng.integers(3))

    def rewrite(node):
        if isinstance(node, str):
            return node
        if node is target:
            left, right = node
            if move == 0 and not isinstance(right, str):
                return ((left, right[0]), right[1])  # left rotation
            if move == 1 and not isinstance(left, str):
                return (left[0], (left[1], right))  # right rotation
            return (right, left)  # child flip
        return (rewrite(node[0]), rewrite(node[1]))

    return rewrite(tree)


def _plan_from_tree(state: _State, query: JoinQuery, space: PlanSpace) -> Optional[Plan]:
    """Plan from a tree state; None when a split lacks a crossing predicate
    or the tree falls outside ``space``."""
    method_iter = iter(state.methods)

    def build(node) -> Optional[PlanNode]:
        if isinstance(node, str):
            return Scan(table=node)
        left = build(node[0])
        right = build(node[1])
        if left is None or right is None:
            return None
        left_rels = frozenset(_tree_leaves(node[0]))
        subset = left_rels | frozenset(_tree_leaves(node[1]))
        preds = [
            p
            for p in query.predicates_within(subset)
            if (p.left in left_rels) != (p.right in left_rels)
        ]
        if not preds:
            return None
        try:
            return space.join(
                left=left,
                right=right,
                method=next(method_iter),
                predicate_label=preds[0].label,
                order_label=preds[0].order_label,
            )
        except ValueError:  # PlanShapeError: outside the space
            return None

    node = build(state.tree)
    if node is None:
        return None
    if query.required_order is not None and node.order != query.required_order:
        node = Sort(child=node, sort_order=query.required_order)
    return Plan(node)


def _random_tree_state(
    query: JoinQuery,
    methods: Sequence[JoinMethod],
    rng: np.random.Generator,
    space: PlanSpace,
) -> _State:
    """A random valid tree state: connected left-deep start + random
    shape mutations (kept only while the tree stays valid)."""
    base = _random_state(query, methods, rng)
    tree = base.order[0]
    for name in base.order[1:]:
        tree = (tree, name)
    state = _State(order=list(base.order), methods=base.methods, tree=tree)
    if space.shape == "left-deep":
        return state
    for _ in range(2 * len(base.order)):
        cand = _State(
            order=state.order,
            methods=state.methods,
            tree=_tree_mutate_shape(state.tree, rng),
        )
        if _plan_from_tree(cand, query, space) is not None:
            state = cand
    return state


def _tree_neighbours(
    state: _State,
    methods: Sequence[JoinMethod],
    rng: np.random.Generator,
    n_samples: int,
) -> List[_State]:
    """Random neighbour tree states: leaf swap / shape move / method move."""
    leaves = _tree_leaves(state.tree)
    n = len(leaves)
    out: List[_State] = []
    for _ in range(n_samples):
        kind = int(rng.integers(3))
        tree = state.tree
        method_vec = list(state.methods)
        if kind == 0 and n >= 2:  # leaf swap
            i, j = rng.choice(n, size=2, replace=False)
            swapped = list(leaves)
            swapped[i], swapped[j] = swapped[j], swapped[i]
            tree = _tree_with_leaves(tree, swapped)
        elif kind == 1:  # shape move
            tree = _tree_mutate_shape(tree, rng)
        else:  # method change
            if not method_vec:
                continue
            pos = int(rng.integers(len(method_vec)))
            method_vec[pos] = methods[int(rng.integers(len(methods)))]
        out.append(
            _State(order=_tree_leaves(tree), methods=method_vec, tree=tree)
        )
    return out


def _random_state(
    query: JoinQuery, methods: Sequence[JoinMethod], rng: np.random.Generator
) -> _State:
    """A uniformly random *connected* left-deep order."""
    names = query.relation_names()
    order = [names[int(rng.integers(len(names)))]]
    remaining = set(names) - set(order)
    while remaining:
        group = frozenset(order)
        candidates = [
            r for r in remaining if query.predicates_between(group, r)
        ]
        if not candidates:
            # Disconnected graph: give up gracefully (caller validates).
            candidates = sorted(remaining)
        pick = candidates[int(rng.integers(len(candidates)))]
        order.append(pick)
        remaining.discard(pick)
    method_vec = [
        methods[int(rng.integers(len(methods)))] for _ in range(len(names) - 1)
    ]
    return _State(order=order, methods=method_vec)


def _neighbours(
    state: _State,
    query: JoinQuery,
    methods: Sequence[JoinMethod],
    rng: np.random.Generator,
    n_samples: int,
) -> List[_State]:
    """Sample random neighbour states via swap / cycle / method moves."""
    n = len(state.order)
    out: List[_State] = []
    for _ in range(n_samples):
        kind = rng.integers(3)
        order = list(state.order)
        method_vec = list(state.methods)
        if kind == 0 and n >= 2:  # swap
            i, j = rng.choice(n, size=2, replace=False)
            order[i], order[j] = order[j], order[i]
        elif kind == 1 and n >= 3:  # 3-cycle
            i, j, k = rng.choice(n, size=3, replace=False)
            order[i], order[j], order[k] = order[j], order[k], order[i]
        else:  # method change
            if not method_vec:
                continue
            pos = int(rng.integers(len(method_vec)))
            method_vec[pos] = methods[int(rng.integers(len(methods)))]
        out.append(_State(order=order, methods=method_vec))
    return out


def _space_hooks(
    query: JoinQuery,
    methods: Sequence[JoinMethod],
    rng: np.random.Generator,
    plan_space,
):
    """(make_state, build_plan, neighbours) for the requested plan space.

    The left-deep hooks are the historical ones (identical RNG stream);
    the enlarged spaces use join-tree states.  Union blocks are not
    searchable — their arms are independent, so optimize each arm
    separately instead.
    """
    space = PlanSpace.parse(plan_space)
    if isinstance(query, UnionQuery):
        raise ValueError(
            "randomized search does not support union queries; "
            "optimize each arm separately"
        )
    if space.shape == "left-deep":
        return (
            lambda: _random_state(query, methods, rng),
            lambda s: _build_plan(s, query),
            lambda s, k: _neighbours(s, query, methods, rng, k),
        )
    return (
        lambda: _random_tree_state(query, methods, rng, space),
        lambda s: _plan_from_tree(s, query, space),
        lambda s, k: _tree_neighbours(s, methods, rng, k),
    )


def iterative_improvement(
    query: JoinQuery,
    objective: Objective,
    rng: np.random.Generator,
    methods: Sequence[JoinMethod] = DEFAULT_METHODS,
    n_restarts: int = 8,
    moves_per_step: Optional[int] = None,
    max_steps: int = 200,
    plan_space="left-deep",
    parallelism=None,
) -> RandomizedResult:
    """Multi-start hill climbing over plans in ``plan_space``.

    From each random start, repeatedly samples neighbour moves and takes
    the first strict improvement; a state is declared a local minimum
    only after ``moves_per_step`` sampled moves (default ``8·n``, scaling
    with the neighbourhood size) fail to improve it.  The cheapest local
    minimum across restarts wins.  ``objective`` maps a plan to the
    scalar to minimise (e.g. ``lambda p: cm.plan_expected_cost(p, q, mem)``).

    The default ``"left-deep"`` search reproduces the historical RNG
    stream exactly; ``"zig-zag"``/``"bushy"`` switch to join-tree states
    with structural (rotation / child-flip) moves added.

    ``parallelism`` scores each step's sampled neighbour batch
    *speculatively* on a thread pool, then scans the scores in sampling
    order for the first strict improvement — the accepted move, the
    whole trajectory, the final plan and the reported ``evaluations``
    (defined as the objective calls the sequential scan performs) are
    identical for every pool size, because candidate sampling draws from
    ``rng`` before any evaluation starts.  The objective must be
    thread-safe; objective calls past the accepted move are speculative
    extra work, so external counters inside the objective (e.g. a cost
    model's ``eval_count``) may advance further than sequentially.
    Process pools are ignored (objective closures do not pickle).
    """
    make_state, build, neigh = _space_hooks(query, methods, rng, plan_space)
    if not query.is_connected():
        raise ValueError("randomized search requires a connected join graph")
    if moves_per_step is None:
        moves_per_step = 8 * query.n_relations
    pool = get_pool(parallelism)
    use_pool = pool is not None and pool.backend == "threads"
    best_plan: Optional[Plan] = None
    best_cost = math.inf
    evaluations = 0
    for _ in range(max(1, n_restarts)):
        state = make_state()
        plan = build(state)
        if plan is None:
            continue
        cost = objective(plan)
        evaluations += 1
        for _ in range(max_steps):
            improved = False
            cands = neigh(state, moves_per_step)
            if use_pool and not pool.closed and len(cands) >= 2:
                built = [(cand, build(cand)) for cand in cands]
                pairs = [(c, p) for c, p in built if p is not None]
                costs = pool.map_ordered(objective, [(p,) for _, p in pairs])
                for (cand, cand_plan), cand_cost in zip(pairs, costs):
                    evaluations += 1
                    if cand_cost < cost:
                        state, plan, cost = cand, cand_plan, cand_cost
                        improved = True
                        break
            else:
                for cand in cands:
                    cand_plan = build(cand)
                    if cand_plan is None:
                        continue
                    cand_cost = objective(cand_plan)
                    evaluations += 1
                    if cand_cost < cost:
                        state, plan, cost = cand, cand_plan, cand_cost
                        improved = True
                        break
            if not improved:
                break
        if cost < best_cost:
            best_cost, best_plan = cost, plan
    if best_plan is None:
        raise ValueError("no valid plan found")
    return RandomizedResult(
        best=PlanChoice(plan=best_plan, objective=best_cost),
        evaluations=evaluations,
        restarts=n_restarts,
    )


def simulated_annealing(
    query: JoinQuery,
    objective: Objective,
    rng: np.random.Generator,
    methods: Sequence[JoinMethod] = DEFAULT_METHODS,
    initial_temperature: Optional[float] = None,
    cooling: float = 0.92,
    steps_per_temperature: int = 30,
    min_temperature_ratio: float = 1e-3,
    plan_space="left-deep",
) -> RandomizedResult:
    """Simulated annealing ([IK90]-style) over plans in ``plan_space``.

    Accepts uphill moves with probability ``exp(-delta / T)``; the
    temperature starts at the initial plan's cost (unless given) and
    decays geometrically.  Tracks and returns the best plan ever seen.
    Plan spaces behave as in :func:`iterative_improvement`.  Annealing
    stays sequential by design: each acceptance decision consumes RNG
    state conditioned on the previous one, so there is no independent
    batch to fan out.
    """
    make_state, build, neigh = _space_hooks(query, methods, rng, plan_space)
    if not query.is_connected():
        raise ValueError("randomized search requires a connected join graph")
    if not 0.0 < cooling < 1.0:
        raise ValueError("cooling must be in (0, 1)")
    state = make_state()
    plan = build(state)
    if plan is None:
        raise ValueError("no valid starting plan")
    cost = objective(plan)
    evaluations = 1
    best_plan, best_cost = plan, cost
    temperature = initial_temperature if initial_temperature else max(cost, 1.0)
    floor = temperature * min_temperature_ratio
    while temperature > floor:
        for _ in range(steps_per_temperature):
            cands = neigh(state, 1)
            if not cands:
                continue
            cand_plan = build(cands[0])
            if cand_plan is None:
                continue
            cand_cost = objective(cand_plan)
            evaluations += 1
            delta = cand_cost - cost
            if delta <= 0 or rng.random() < math.exp(-delta / temperature):
                state, plan, cost = cands[0], cand_plan, cand_cost
                if cost < best_cost:
                    best_plan, best_cost = plan, cost
        temperature *= cooling
    return RandomizedResult(
        best=PlanChoice(plan=best_plan, objective=best_cost),
        evaluations=evaluations,
        restarts=1,
    )
