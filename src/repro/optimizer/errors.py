"""Optimizer-facing error types.

Configuration mistakes (an unknown plan space, a nonsensical ``top_k``,
an objective the facade does not know) are distinct from malformed
queries, but callers want to catch both uniformly — a service wrapping
:func:`repro.optimize` should be able to turn "the request was invalid"
into one error path.  :class:`OptimizerConfigError` therefore derives
from :class:`~repro.plans.query.QueryError` (itself a ``ValueError``),
so existing ``except ValueError`` / ``except QueryError`` call sites
keep working while new code can catch the precise class.
"""

from __future__ import annotations

from ..plans.query import QueryError

__all__ = ["OptimizerConfigError"]


class OptimizerConfigError(QueryError):
    """Raised when an optimizer is constructed with invalid settings."""
