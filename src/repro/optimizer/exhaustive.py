"""Exhaustive plan enumeration: the ground truth for small queries.

The correctness experiments (E3, and the Theorem 3.3/3.4 tests) need the
*true* LEC plan to compare against.  For small ``n`` we can afford to
enumerate every left-deep plan — all join orders × all method vectors ×
the optional enforcer sort — and evaluate an arbitrary objective on each.

The enumerator is deliberately independent of the DP engine (different
code path, plan built directly from the permutation) so agreement between
the two is meaningful evidence of correctness.
"""

from __future__ import annotations

import itertools
from typing import Callable, FrozenSet, Iterator, List, Optional, Sequence, Tuple

from ..plans.nodes import Join, Plan, PlanNode, Project, Scan, Sort
from ..plans.nodes import Union as UnionNode
from ..plans.properties import AccessPath, JoinMethod
from ..plans.query import JoinQuery
from ..plans.space import LEFT_DEEP, PlanSpace
from ..plans.spju import UnionQuery
from .result import PlanChoice

__all__ = [
    "enumerate_plans",
    "enumerate_left_deep_plans",
    "exhaustive_best",
    "MAX_EXHAUSTIVE_RELATIONS",
]

#: Safety cap: n! · |methods|^(n-1) plans beyond this is unreasonable.
MAX_EXHAUSTIVE_RELATIONS = 8


# Deliberately shape-frozen: the permutation enumerator is kept as an
# independent left-deep oracle (different code path from PlanSpace's
# partition walk), so agreement with the DP stays meaningful evidence.
def enumerate_left_deep_plans(  # optlint: disable=PLAN001
    query: JoinQuery,
    methods: Sequence[JoinMethod],
    allow_cross_products: bool = False,
    enforce_order: bool = True,
) -> Iterator[Plan]:
    """Yield every left-deep plan for ``query``.

    Join orders that would require a cross product (the prefix is not
    connected to the next relation) are skipped unless
    ``allow_cross_products``.  When the query has a ``required_order`` and
    the plan does not naturally produce it, an enforcer sort is appended
    (``enforce_order=True``), mirroring what the DP engine emits.
    """
    names = query.relation_names()
    if len(names) > MAX_EXHAUSTIVE_RELATIONS:
        raise ValueError(
            f"refusing to enumerate {len(names)} relations exhaustively "
            f"(cap is {MAX_EXHAUSTIVE_RELATIONS})"
        )
    scan_choices = {name: _access_paths(name, query) for name in names}
    if len(names) == 1:
        for scan in scan_choices[names[0]]:
            yield Plan(scan)
        return
    for perm in itertools.permutations(names):
        labels = _labels_for(perm, query, allow_cross_products)
        if labels is None:
            continue
        n_joins = len(perm) - 1
        for method_vec in itertools.product(methods, repeat=n_joins):
            for scans in itertools.product(*(scan_choices[n] for n in perm)):
                node: PlanNode = scans[0]
                for i in range(n_joins):
                    node = Join(
                        left=node,
                        right=scans[i + 1],
                        method=method_vec[i],
                        predicate_label=labels[i][0],
                        order_label=labels[i][1],
                    )
                if (
                    enforce_order
                    and query.required_order is not None
                    and node.order != query.required_order
                ):
                    node = Sort(child=node, sort_order=query.required_order)
                yield Plan(node)


def enumerate_plans(
    query: JoinQuery,
    methods: Sequence[JoinMethod],
    space=LEFT_DEEP,
    allow_cross_products: bool = False,
    enforce_order: bool = True,
) -> Iterator[Plan]:
    """Yield every plan for ``query`` inside the given plan space.

    The shape-generic counterpart of :func:`enumerate_left_deep_plans`:
    subsets are split recursively with :meth:`PlanSpace.partitions`, so
    left-deep, zig-zag and bushy ground truth all come from this one
    enumerator.  Union queries (with a union-capable space) yield the
    cross product of per-arm enumerations under a single Union root.
    Block roots gain an enforcer sort and a streaming projection exactly
    as the DP emits them, so objective values are directly comparable.
    """
    space = PlanSpace.parse(space)
    names = query.relation_names()
    if len(names) > MAX_EXHAUSTIVE_RELATIONS:
        raise ValueError(
            f"refusing to enumerate {len(names)} relations exhaustively "
            f"(cap is {MAX_EXHAUSTIVE_RELATIONS})"
        )
    scan_choices = {name: _access_paths(name, query) for name in names}

    if isinstance(query, UnionQuery):
        if not space.supports_union:
            raise ValueError(
                f"query is a union block but plan space {space.key!r} does "
                "not admit union plans; use 'spju' (or a '+union' space)"
            )
        arm_roots: List[List[PlanNode]] = []
        for arm in query.arms:
            subset = frozenset(r.name for r in arm.relations)
            roots = list(
                _subset_trees(
                    subset, query, space, scan_choices, methods,
                    allow_cross_products,
                )
            )
            if arm.projection_ratio < 1.0:
                roots = [Project(child=r) for r in roots]
            arm_roots.append(roots)
        for combo in itertools.product(*arm_roots):
            yield Plan(UnionNode(inputs=tuple(combo), distinct=query.distinct))
        return

    full = frozenset(names)
    project = getattr(query, "projection_ratio", 1.0) < 1.0
    for node in _subset_trees(
        full, query, space, scan_choices, methods, allow_cross_products
    ):
        if (
            enforce_order
            and query.required_order is not None
            and len(names) > 1
            and node.order != query.required_order
        ):
            node = Sort(child=node, sort_order=query.required_order)
        if project:
            node = Project(child=node)
        yield Plan(node)


def _subset_trees(
    subset: FrozenSet[str],
    query: JoinQuery,
    space: PlanSpace,
    scan_choices,
    methods: Sequence[JoinMethod],
    allow_cross_products: bool,
) -> Iterator[PlanNode]:
    """All join trees over ``subset`` admitted by ``space``.

    Mirrors the DP's partition walk (same crossing-predicate label and
    order-target selection), but builds every combination instead of
    keeping the best — so agreement with the DP is meaningful evidence.
    """
    if len(subset) == 1:
        yield from scan_choices[next(iter(subset))]
        return
    for left_rels, right_rels in space.partitions(subset):
        preds = [
            p
            for p in query.predicates_within(subset)
            if (p.left in left_rels) != (p.right in left_rels)
        ]
        if not preds and not allow_cross_products:
            continue
        if preds:
            label = preds[0].label
            order_target = preds[0].order_label
        else:
            label = f"cross[{min(right_rels)}]"
            order_target = None
        for left in _subset_trees(
            left_rels, query, space, scan_choices, methods, allow_cross_products
        ):
            for right in _subset_trees(
                right_rels, query, space, scan_choices, methods,
                allow_cross_products,
            ):
                for method in methods:
                    yield Join(
                        left=left,
                        right=right,
                        method=method,
                        predicate_label=label,
                        order_label=order_target,
                    )


def _access_paths(name: str, query: JoinQuery) -> List[Scan]:
    """Candidate scan leaves for one relation (mirrors the DP's choices)."""
    paths = [Scan(table=name)]
    if query.relation(name).has_index_path():
        paths.append(Scan(table=name, access=AccessPath.INDEX_SCAN))
    return paths


def _labels_for(
    perm: Tuple[str, ...], query: JoinQuery, allow_cross_products: bool
) -> Optional[List[Tuple[str, Optional[str]]]]:
    """(label, order_label) per join of the permutation; None if invalid."""
    labels: List[Tuple[str, Optional[str]]] = []
    group = frozenset((perm[0],))
    for newcomer in perm[1:]:
        preds = query.predicates_between(group, newcomer)
        if preds:
            labels.append((preds[0].label, preds[0].order_label))
        elif allow_cross_products:
            labels.append((f"cross[{newcomer}]", None))
        else:
            return None
        group = group | {newcomer}
    return labels


def exhaustive_best(
    query: JoinQuery,
    objective: Callable[[Plan], float],
    methods: Sequence[JoinMethod],
    allow_cross_products: bool = False,
    space=LEFT_DEEP,
) -> Tuple[PlanChoice, List[PlanChoice]]:
    """Evaluate ``objective`` on every plan in ``space``; return best and all.

    The returned list is sorted ascending by objective, so ``[0]`` is the
    true optimum over the space and the tail gives regret curves for the
    approximation experiments.  The default space keeps the historical
    left-deep behavior (via the independent permutation enumerator).
    """
    space = PlanSpace.parse(space)
    if space.key == "left-deep" and not isinstance(query, UnionQuery):
        plans: Iterator[Plan] = enumerate_left_deep_plans(
            query, methods, allow_cross_products=allow_cross_products
        )
    else:
        plans = enumerate_plans(
            query,
            methods,
            space=space,
            allow_cross_products=allow_cross_products,
        )
    scored = [PlanChoice(plan=p, objective=objective(p)) for p in plans]
    if not scored:
        raise ValueError(f"no valid {space.key} plans for this query")
    scored.sort(key=lambda c: c.objective)
    return scored[0], scored
