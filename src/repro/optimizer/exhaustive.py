"""Exhaustive plan enumeration: the ground truth for small queries.

The correctness experiments (E3, and the Theorem 3.3/3.4 tests) need the
*true* LEC plan to compare against.  For small ``n`` we can afford to
enumerate every left-deep plan — all join orders × all method vectors ×
the optional enforcer sort — and evaluate an arbitrary objective on each.

The enumerator is deliberately independent of the DP engine (different
code path, plan built directly from the permutation) so agreement between
the two is meaningful evidence of correctness.
"""

from __future__ import annotations

import itertools
from typing import Callable, Iterator, List, Optional, Sequence, Tuple

from ..plans.nodes import Join, Plan, PlanNode, Scan, Sort
from ..plans.properties import AccessPath, JoinMethod
from ..plans.query import JoinQuery
from .result import PlanChoice

__all__ = [
    "enumerate_left_deep_plans",
    "exhaustive_best",
    "MAX_EXHAUSTIVE_RELATIONS",
]

#: Safety cap: n! · |methods|^(n-1) plans beyond this is unreasonable.
MAX_EXHAUSTIVE_RELATIONS = 8


def enumerate_left_deep_plans(
    query: JoinQuery,
    methods: Sequence[JoinMethod],
    allow_cross_products: bool = False,
    enforce_order: bool = True,
) -> Iterator[Plan]:
    """Yield every left-deep plan for ``query``.

    Join orders that would require a cross product (the prefix is not
    connected to the next relation) are skipped unless
    ``allow_cross_products``.  When the query has a ``required_order`` and
    the plan does not naturally produce it, an enforcer sort is appended
    (``enforce_order=True``), mirroring what the DP engine emits.
    """
    names = query.relation_names()
    if len(names) > MAX_EXHAUSTIVE_RELATIONS:
        raise ValueError(
            f"refusing to enumerate {len(names)} relations exhaustively "
            f"(cap is {MAX_EXHAUSTIVE_RELATIONS})"
        )
    scan_choices = {name: _access_paths(name, query) for name in names}
    if len(names) == 1:
        for scan in scan_choices[names[0]]:
            yield Plan(scan)
        return
    for perm in itertools.permutations(names):
        labels = _labels_for(perm, query, allow_cross_products)
        if labels is None:
            continue
        n_joins = len(perm) - 1
        for method_vec in itertools.product(methods, repeat=n_joins):
            for scans in itertools.product(*(scan_choices[n] for n in perm)):
                node: PlanNode = scans[0]
                for i in range(n_joins):
                    node = Join(
                        left=node,
                        right=scans[i + 1],
                        method=method_vec[i],
                        predicate_label=labels[i][0],
                        order_label=labels[i][1],
                    )
                if (
                    enforce_order
                    and query.required_order is not None
                    and node.order != query.required_order
                ):
                    node = Sort(child=node, sort_order=query.required_order)
                yield Plan(node)


def _access_paths(name: str, query: JoinQuery) -> List[Scan]:
    """Candidate scan leaves for one relation (mirrors the DP's choices)."""
    paths = [Scan(table=name)]
    if query.relation(name).has_index_path():
        paths.append(Scan(table=name, access=AccessPath.INDEX_SCAN))
    return paths


def _labels_for(
    perm: Tuple[str, ...], query: JoinQuery, allow_cross_products: bool
) -> Optional[List[Tuple[str, Optional[str]]]]:
    """(label, order_label) per join of the permutation; None if invalid."""
    labels: List[Tuple[str, Optional[str]]] = []
    group = frozenset((perm[0],))
    for newcomer in perm[1:]:
        preds = query.predicates_between(group, newcomer)
        if preds:
            labels.append((preds[0].label, preds[0].order_label))
        elif allow_cross_products:
            labels.append((f"cross[{newcomer}]", None))
        else:
            return None
        group = group | {newcomer}
    return labels


def exhaustive_best(
    query: JoinQuery,
    objective: Callable[[Plan], float],
    methods: Sequence[JoinMethod],
    allow_cross_products: bool = False,
) -> Tuple[PlanChoice, List[PlanChoice]]:
    """Evaluate ``objective`` on every left-deep plan; return best and all.

    The returned list is sorted ascending by objective, so ``[0]`` is the
    true optimum over the left-deep space and the tail gives regret curves
    for the approximation experiments.
    """
    scored = [
        PlanChoice(plan=p, objective=objective(p))
        for p in enumerate_left_deep_plans(
            query, methods, allow_cross_products=allow_cross_products
        )
    ]
    if not scored:
        raise ValueError("no valid left-deep plans for this query")
    scored.sort(key=lambda c: c.objective)
    return scored[0], scored
