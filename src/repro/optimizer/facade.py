"""The single front door: :func:`repro.optimize`.

Every optimization mode this library implements — classical point-cost
(LSC), the exact expected-cost DP (Algorithm C / LEC), phase-marginal
costing for Markov memory, the multi-parameter DP (Algorithm D), and the
candidate-generation Algorithms A/B — is reachable through one call::

    from repro import optimize, two_point

    result = optimize(query, objective="lec", memory=two_point(2000, 0.8, 700))
    result.plan, result.objective

The facade owns a small LRU of :class:`~repro.core.context.
OptimizationContext` objects, keyed by the query's statistics
fingerprint and the cost model's configuration.  Repeated calls on the
same (query, cost model) therefore share memoized subset sizes, size
distributions, survival tables and step costs; mutating the catalog
changes the fingerprint, which transparently builds a fresh context —
stale reuse cannot happen.

Objectives and their ``memory`` requirements:

========================  ==========================================
objective                 memory argument
========================  ==========================================
``point`` / ``lsc``       a number (pages), or a distribution whose
                          mean is used (the classical baseline)
``expected`` / ``lec``    a :class:`DiscreteDistribution`, or a
                          :class:`MarkovParameter` for dynamic memory
``markov`` / ``dynamic``  a :class:`MarkovParameter`
``multiparam``            a :class:`DiscreteDistribution`; sizes and
                          selectivities also treated as distributions
``algorithm_a``           a :class:`DiscreteDistribution` (per-bucket
                          black-box candidate generation)
``algorithm_b``           a :class:`DiscreteDistribution` (top-``c``
                          per bucket, re-costed by expectation)
========================  ==========================================
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from numbers import Real
from typing import Optional, Tuple, Union

from ..core.context import OptimizationContext, query_fingerprint
from ..core.distributions import DiscreteDistribution
from ..core.markov import MarkovParameter
from ..costmodel.model import CostModel
from ..plans.query import JoinQuery
from ..plans.space import PlanSpace
from .errors import OptimizerConfigError
from .result import OptimizationResult

__all__ = ["optimize", "last_context", "clear_context_cache"]

# Canonical objective names, keyed by every accepted spelling.
_OBJECTIVES = {
    "point": "point",
    "lsc": "point",
    "expected": "expected",
    "lec": "expected",
    "markov": "markov",
    "dynamic": "markov",
    "multiparam": "multiparam",
    "multi-param": "multiparam",
    "multi_param": "multiparam",
    "algorithm_a": "algorithm_a",
    "algorithm-a": "algorithm_a",
    "algorithm_b": "algorithm_b",
    "algorithm-b": "algorithm_b",
}

# LRU of contexts keyed by (query fingerprint, cost-model configuration).
# Small on purpose: a context holds every memoized distribution for its
# query, and the working set of distinct (query, model) pairs in one
# process is tiny.  The lock makes get/insert/evict safe under the
# serving layer's thread pool — OrderedDict.move_to_end/popitem are not
# atomic, so unguarded concurrent optimize() calls could corrupt the LRU.
_CONTEXT_CACHE_CAP = 8
_context_cache: "OrderedDict[Tuple, OptimizationContext]" = OrderedDict()
_context_cache_lock = threading.Lock()
_last_context: Optional[OptimizationContext] = None


def _model_key(cm: CostModel) -> Tuple:
    return (cm.methods, cm.pipelined_methods)


def _context_for(query: JoinQuery, cm: CostModel) -> OptimizationContext:
    """Fetch (or build) the shared context for this query + cost model.

    The key embeds every statistic the optimizer reads, so a query built
    from mutated catalog statistics maps to a different slot — the old
    context simply ages out of the LRU.  Thread-safe: two concurrent
    callers with the same key receive the same context object.
    """
    key = (query_fingerprint(query), _model_key(cm))
    with _context_cache_lock:
        ctx = _context_cache.get(key)
        if ctx is not None:
            _context_cache.move_to_end(key)
            return ctx
        ctx = OptimizationContext(query, cost_model=cm)
        _context_cache[key] = ctx
        while len(_context_cache) > _CONTEXT_CACHE_CAP:
            _context_cache.popitem(last=False)
        return ctx


def last_context() -> Optional[OptimizationContext]:
    """The context used by the most recent :func:`optimize` call.

    Exposed for observability: ``optimize(...);
    last_context().stats()`` shows what the caches did.
    """
    return _last_context


def clear_context_cache() -> None:
    """Drop every cached context (e.g. between unrelated workloads)."""
    global _last_context
    with _context_cache_lock:
        _context_cache.clear()
        _last_context = None


def _require_distribution(memory, objective: str) -> DiscreteDistribution:
    if not isinstance(memory, DiscreteDistribution):
        raise OptimizerConfigError(
            f"objective {objective!r} needs memory as a DiscreteDistribution, "
            f"got {type(memory).__name__}"
        )
    return memory


def optimize(
    query: JoinQuery,
    objective: str = "lec",
    *,
    memory: Union[Real, DiscreteDistribution, MarkovParameter, None] = None,
    cost_model: Optional[CostModel] = None,
    plan_space: str = "left-deep",
    allow_cross_products: bool = False,
    top_k: int = 1,
    max_buckets: int = 16,
    fast: bool = False,
    include_mean: bool = True,
    context: Optional[OptimizationContext] = None,
    level_batching: Optional[bool] = None,
    parallelism=None,
) -> OptimizationResult:
    """Optimize ``query`` under the chosen costing objective.

    Parameters
    ----------
    query:
        The join query to optimize.
    objective:
        One of the spellings in the module table ("lec" by default).
    memory:
        Available-memory input; its required type depends on the
        objective (see the module docstring's table).
    cost_model:
        Cost model to evaluate formulas with (fresh default if omitted).
    plan_space:
        A :class:`~repro.plans.space.PlanSpace` or its spelling:
        ``"left-deep"`` (default), ``"zig-zag"``, ``"bushy"``, or
        ``"spju"`` (bushy + union blocks) — union queries
        (:class:`~repro.plans.spju.UnionQuery`) need a union-capable
        space.
    allow_cross_products:
        Passed through to the System-R engine.
    top_k:
        For ``point``/``expected``/``markov``: plans retained per dag
        node and returned in ``result.candidates``.  For
        ``algorithm_b``: the per-bucket candidate count ``c``.
    max_buckets, fast:
        Multi-parameter knobs (Algorithm D only).
    include_mean:
        Algorithms A/B: probe the distribution mean as an extra bucket.
    context:
        Explicit :class:`~repro.core.context.OptimizationContext` to use
        instead of the facade's cached one.  Must match the query's
        statistics or it is (safely) ignored downstream.
    level_batching:
        Batch each DP level's join steps through the vectorized kernel
        (``None`` lets the engine decide).  Bit-invisible in the result.
    parallelism:
        Fan level batches out across a worker pool — ``None``/``"off"``,
        an int worker count, ``"auto"``, ``"threads:4"``,
        ``"processes:2"``, or a :class:`~repro.core.parallel.WorkerPool`
        (see :func:`repro.core.parallel.parse_parallelism`).  Plans,
        objectives and stats stay bit-identical to sequential
        evaluation; only wall-clock changes.

    Returns
    -------
    OptimizationResult
        ``result.plan`` and ``result.objective`` are the winner;
        ``result.candidates``/``result.stats`` carry mode-specific
        detail.

    Raises
    ------
    OptimizerConfigError
        Unknown objective, missing/ill-typed ``memory``, or invalid
        engine settings (bad plan space, ``top_k < 1``).
    """
    global _last_context

    # The algorithm modules import this package (for the costers and the
    # engine), so importing them at module load would be circular; they
    # are fully initialized by the time optimize() runs.
    from ..core.algorithm_a import optimize_algorithm_a
    from ..core.algorithm_b import optimize_algorithm_b
    from ..core.algorithm_c import optimize_algorithm_c
    from ..core.algorithm_d import optimize_algorithm_d
    from ..core.lsc import optimize_lsc

    kind = _OBJECTIVES.get(str(objective).lower())
    if kind is None:
        known = ", ".join(sorted(set(_OBJECTIVES)))
        raise OptimizerConfigError(
            f"unknown objective {objective!r}; expected one of: {known}"
        )
    if memory is None:
        raise OptimizerConfigError(
            f"objective {objective!r} requires the memory= argument"
        )

    try:
        space = PlanSpace.parse(plan_space)
    except ValueError as exc:
        raise OptimizerConfigError(str(exc)) from None

    cm = cost_model if cost_model is not None else CostModel()
    ctx = context if context is not None else _context_for(query, cm)
    # Published under the cache lock: clear_context_cache() resets this
    # global concurrently, and an unguarded write could resurrect a
    # just-cleared context for observers of last_context().
    with _context_cache_lock:
        _last_context = ctx
    common = dict(
        cost_model=cm,
        plan_space=space,
        allow_cross_products=allow_cross_products,
        context=ctx,
        level_batching=level_batching,
        parallelism=parallelism,
    )

    if kind == "point":
        if isinstance(memory, DiscreteDistribution):
            memory = memory.mean()
        if not isinstance(memory, Real):
            raise OptimizerConfigError(
                "objective 'point' needs memory as a number of pages "
                f"(or a distribution, whose mean is used), got "
                f"{type(memory).__name__}"
            )
        return optimize_lsc(query, float(memory), top_k=top_k, **common)

    if kind == "expected":
        if not isinstance(memory, (DiscreteDistribution, MarkovParameter)):
            raise OptimizerConfigError(
                "objective 'lec' needs memory as a DiscreteDistribution "
                f"or MarkovParameter, got {type(memory).__name__}"
            )
        return optimize_algorithm_c(query, memory, top_k=top_k, **common)

    if kind == "markov":
        if not isinstance(memory, MarkovParameter):
            raise OptimizerConfigError(
                "objective 'markov' needs memory as a MarkovParameter, "
                f"got {type(memory).__name__}"
            )
        return optimize_algorithm_c(query, memory, top_k=top_k, **common)

    if kind == "multiparam":
        dist = _require_distribution(memory, "multiparam")
        return optimize_algorithm_d(
            query, dist, max_buckets=max_buckets, fast=fast, top_k=top_k, **common
        )

    if kind == "algorithm_a":
        dist = _require_distribution(memory, "algorithm_a")
        return optimize_algorithm_a(
            query, dist, include_mean=include_mean, **common
        )

    # algorithm_b
    dist = _require_distribution(memory, "algorithm_b")
    return optimize_algorithm_b(
        query, dist, c=top_k, include_mean=include_mean, **common
    )
