"""Exact LEC optimization under *dependent* parameters (Section 4).

:class:`BayesNetCoster` drops the paper's independence assumption: the
joint distribution of memory and predicate selectivities is given by a
:class:`~repro.core.bayesnet.DiscreteBayesNet`, and every DP step takes
its expectation over the exact joint — no product-of-marginals
approximation, no rebucketing.  Because the objective is still an
expectation over one fixed distribution, additivity and hence DP
optimality are untouched: this is Algorithm C/D generalised to
correlated parameters.

The expectation walk is an array program: the joint's assignments come
from :meth:`~repro.core.bayesnet.DiscreteBayesNet.joint_arrays` as value
columns, subset page counts are computed for *all* assignments at once
(:meth:`BayesNetCoster._pages_given_many`, bit-identical to the scalar
per-assignment arithmetic), the cost formulas run through the vectorized
``*_many`` cost-model entry points, and the final expectation is the
same left-to-right cumulative sum the scalar ``net.expectation`` loop
performed.  Step costs are memoized in the bound
:class:`~repro.core.context.OptimizationContext` and a whole DP level
can be prefetched (``prefetch_join_steps``) — optionally fanned out over
a :class:`~repro.core.parallel.WorkerPool` with deterministic chunking,
exactly like the independent costers.

Network conventions: the memory variable is named by ``memory_var``
(default ``"M"``); each uncertain predicate selectivity is a variable
named by the predicate's *label*.  Predicates without a matching variable
use their point selectivity.  Latent variables (e.g. "load") may appear
freely; they are marginalised by the joint enumeration.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional

import numpy as np

from ..core.bayesnet import Assignment, BayesNetError, DiscreteBayesNet
from ..core.context import OptimizationContext
from ..core.parallel import chunk_spans
from ..costmodel import formulas
from ..costmodel.model import CostModel
from ..plans.nodes import Join, Plan, Scan, Sort
from ..plans.properties import JoinMethod
from ..plans.query import JoinQuery
from .costers import _MIN_PARALLEL_STEPS, Coster, _pending_by_formula, _store_steps
from .result import OptimizationResult
from .systemr import SystemRDP

__all__ = ["BayesNetCoster", "optimize_dependent", "plan_expected_cost_dependent"]


def _bayes_step_rows_pure(
    method: JoinMethod,
    left_pages: np.ndarray,
    right_pages: np.ndarray,
    memory_col: np.ndarray,
    probs: np.ndarray,
    left_presorted: bool,
    right_presorted: bool,
) -> np.ndarray:
    """Counting-free expected step costs for a block of Bayes-net steps.

    ``left_pages``/``right_pages`` have one row per step and one column
    per joint assignment; ``memory_col``/``probs`` are the assignment
    columns.  Runs the *pure* formula kernels (module-level and free of
    :class:`CostModel` state, so it is safe in worker threads and
    picklable for process pools); the caller charges ``eval_count`` via
    :meth:`CostModel.note_evaluations`.  Each grid element depends only
    on its own ``(pages, pages, memory)`` triple and the per-row
    reduction is a cumulative sum, so any row block of the result is
    bit-identical to evaluating those steps alone.
    """
    memory = np.broadcast_to(memory_col, left_pages.shape)
    if method is JoinMethod.SORT_MERGE and (left_presorted or right_presorted):
        grid = formulas.sort_merge_cost_with_orders_vec(
            left_pages, right_pages, memory, left_presorted, right_presorted
        )
    else:
        grid = formulas.join_cost_vec(method, left_pages, right_pages, memory)
    return np.cumsum(grid * probs[None, :], axis=1)[:, -1]


class BayesNetCoster(Coster):
    """Costs DP steps by exact expectation over a parameter Bayes net."""

    def __init__(
        self,
        net: DiscreteBayesNet,
        memory_var: str = "M",
        cost_model: Optional[CostModel] = None,
    ):
        super().__init__(cost_model)
        if memory_var not in net.names:
            raise BayesNetError(
                f"network has no memory variable {memory_var!r}"
            )
        self.net = net
        self.memory_var = memory_var
        self._columns: Dict[str, np.ndarray] = {}
        self._memory_col = np.empty(0)
        self._pages_many_cache: Dict[FrozenSet[str], np.ndarray] = {}

    def bind(
        self, query: JoinQuery, context: Optional[OptimizationContext] = None
    ) -> None:
        super().bind(query, context)
        values, _ = self.net.joint_arrays()
        self._columns = {
            name: values[:, j] for j, name in enumerate(self.net.names)
        }
        self._memory_col = self._columns[self.memory_var]
        self._pages_many_cache = {}

    def _memo_key(self) -> tuple:
        # The net is keyed by identity (default object hash): two net
        # objects are never assumed value-equal, so cross-coster sharing
        # through one context only happens for literally the same
        # network.  The key holds a reference, so the identity is stable
        # for the memo's lifetime.
        return ("bayesnet", self.net, self.memory_var)

    # -- size arithmetic under an assignment -----------------------------

    def _pages_given(
        self, rels: FrozenSet[str], assignment: Assignment
    ) -> float:
        """Subset page count with selectivities taken from the assignment."""
        assert self.query is not None
        query = self.query
        rels = frozenset(rels)
        if len(rels) == 1:
            return query.pages_of(next(iter(rels)))
        preds = query.predicates_within(rels)
        if (
            len(rels) == 2
            and len(preds) == 1
            and preds[0].result_pages_override is not None
        ):
            return float(preds[0].result_pages_override)
        rows = 1.0
        for name in rels:
            rows *= query.rows_of(name)
        for p in preds:
            rows *= assignment.get(p.label, p.selectivity)
        return max(1.0, rows / query.rows_per_page)

    def _pages_given_many(self, rels: FrozenSet[str]) -> np.ndarray:
        """Per-assignment page counts for ``rels`` across the whole joint.

        Column ``j`` equals ``_pages_given(rels, joint()[j][0])`` bit for
        bit: the relation-row base product runs the *same* frozenset
        iteration the scalar walk uses (a scalar, shared by every
        assignment), and each predicate's selectivity column multiplies
        in afterwards in the same predicate order — so every assignment
        sees the identical left-to-right multiply sequence.
        """
        assert self.query is not None
        query = self.query
        rels = frozenset(rels)
        cached = self._pages_many_cache.get(rels)
        if cached is not None:
            return cached
        k = self._memory_col.size
        if len(rels) == 1:
            arr = np.full(k, query.pages_of(next(iter(rels))))
        else:
            preds = query.predicates_within(rels)
            if (
                len(rels) == 2
                and len(preds) == 1
                and preds[0].result_pages_override is not None
            ):
                arr = np.full(k, float(preds[0].result_pages_override))
            else:
                base = 1.0
                for name in rels:
                    base *= query.rows_of(name)
                arr = np.full(k, base)
                for p in preds:
                    col = self._columns.get(p.label)
                    arr = arr * (p.selectivity if col is None else col)
                arr = np.maximum(1.0, arr / query.rows_per_page)
        self._pages_many_cache[rels] = arr
        return arr

    def _join_cost_columns(
        self,
        method: JoinMethod,
        left_pages: np.ndarray,
        right_pages: np.ndarray,
        memory: np.ndarray,
        left_presorted: bool,
        right_presorted: bool,
    ) -> np.ndarray:
        """Vectorized :meth:`Coster._join_formula` over assignment columns."""
        if method is JoinMethod.SORT_MERGE and (left_presorted or right_presorted):
            return self.cost_model.sort_merge_cost_ordered_many(
                left_pages, right_pages, memory, left_presorted, right_presorted
            )
        return self.cost_model.join_cost_many(
            method, left_pages, right_pages, memory
        )

    # -- hooks ------------------------------------------------------------

    def join_step_cost(
        self, method, left_rels, right_rels, phase,
        left_presorted=False, right_presorted=False,
    ):
        key = self._join_step_key(
            method, frozenset(left_rels), frozenset(right_rels), phase,
            left_presorted, right_presorted,
        )

        def compute() -> float:
            lp = self._pages_given_many(left_rels)
            rp = self._pages_given_many(right_rels)
            costs = self._join_cost_columns(
                method, lp, rp, self._memory_col,
                left_presorted, right_presorted,
            )
            return float(self.net.expectation_many(costs))

        return self._step(key, compute)

    def prefetch_join_steps(self, requests, pool=None):
        """One vectorized grid per formula group, optionally fanned out.

        Pending steps sharing ``(method, presorted-flags)`` evaluate as
        one ``(steps × assignments)`` grid through the pure kernels; a
        worker pool splits the step rows with deterministic
        :func:`~repro.core.parallel.chunk_spans` and the chunks merge in
        span order, so memo contents and ``eval_count`` match the
        sequential prefetch (and the on-demand path) exactly.
        """
        assert self.context is not None, "coster used before bind()"
        _, probs = self.net.joint_arrays()
        groups = _pending_by_formula(self.context, self, requests)
        for (method, lps, rps), group in groups.items():
            keys = [key for key, _ in group]
            lp = np.vstack([self._pages_given_many(req[1]) for _, req in group])
            rp = np.vstack([self._pages_given_many(req[2]) for _, req in group])
            n = len(keys)
            spans = (
                chunk_spans(n, pool.size)
                if pool is not None
                and not pool.closed
                and n >= _MIN_PARALLEL_STEPS
                else []
            )
            if len(spans) > 1:
                tasks = [
                    (method, lp[a:b], rp[a:b], self._memory_col, probs, lps, rps)
                    for a, b in spans
                ]
                parts = pool.map_ordered(_bayes_step_rows_pure, tasks)
                costs = np.concatenate(parts)
            else:
                costs = _bayes_step_rows_pure(
                    method, lp, rp, self._memory_col, probs, lps, rps
                )
            self.cost_model.note_evaluations(n * self._memory_col.size)
            _store_steps(self.context, keys, costs)

    def write_cost(self, rels):
        key = (*self._memo_key(), "write", frozenset(rels))
        return self._step(
            key,
            lambda: float(
                self.net.expectation_many(self._pages_given_many(rels))
            ),
        )

    def final_sort_cost(self, rels, phase):
        key = (*self._memo_key(), "sort", frozenset(rels))

        def compute() -> float:
            costs = self.cost_model.sort_cost_many(
                self._pages_given_many(rels), self._memory_col
            )
            return float(self.net.expectation_many(costs))

        return self._step(key, compute)


def optimize_dependent(
    query: JoinQuery,
    net: DiscreteBayesNet,
    memory_var: str = "M",
    cost_model: Optional[CostModel] = None,
    plan_space: str = "left-deep",
    allow_cross_products: bool = False,
    context: Optional[OptimizationContext] = None,
    level_batching: Optional[bool] = None,
    parallelism=None,
) -> OptimizationResult:
    """LEC optimization under a dependent parameter joint.

    ``context``, ``level_batching`` and ``parallelism`` thread straight
    through to :class:`~repro.optimizer.systemr.SystemRDP`; all three are
    bit-invisible in the chosen plan and objective.
    """
    coster = BayesNetCoster(net, memory_var=memory_var, cost_model=cost_model)
    engine = SystemRDP(
        coster,
        plan_space=plan_space,
        allow_cross_products=allow_cross_products,
        context=context,
        level_batching=level_batching,
        parallelism=parallelism,
    )
    return engine.optimize(query)


def plan_expected_cost_dependent(
    plan: Plan,
    query: JoinQuery,
    net: DiscreteBayesNet,
    memory_var: str = "M",
    cost_model: Optional[CostModel] = None,
) -> float:
    """``E[Φ(plan, V)]`` over the net's joint — independent evaluator.

    Costs the plan in every joint assignment at once: each node
    contributes one per-assignment cost column (vectorized formulas over
    the assignment axis) and columns accumulate in node order — the same
    per-assignment addition sequence as walking the plan one assignment
    at a time, so the result is bit-identical to the historical scalar
    walk.  Used to cross-check the DP and to score arbitrary plans
    (e.g. the independence-assuming choice) under the true joint.
    """
    cm = cost_model if cost_model is not None else CostModel()
    coster = BayesNetCoster(net, memory_var=memory_var, cost_model=cm)
    coster.bind(query)
    _, probs = net.joint_arrays()
    memory = coster._memory_col
    totals = np.zeros(probs.size)
    for node in plan.nodes():
        if isinstance(node, Scan):
            totals = totals + cm.scan_node_cost(node, query)
        elif isinstance(node, Sort):
            pages = coster._pages_given_many(node.child.relations())
            totals = totals + cm.sort_cost_many(pages, memory)
        else:
            assert isinstance(node, Join)
            lp = coster._pages_given_many(node.left.relations())
            rp = coster._pages_given_many(node.right.relations())
            target = node.output_order_label
            totals = totals + coster._join_cost_columns(
                node.method,
                lp,
                rp,
                memory,
                node.left.order == target,
                node.right.order == target,
            )
            if node is not plan.root:
                totals = totals + coster._pages_given_many(node.relations())
    return float(net.expectation_many(totals))
