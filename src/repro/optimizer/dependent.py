"""Exact LEC optimization under *dependent* parameters (Section 4).

:class:`BayesNetCoster` drops the paper's independence assumption: the
joint distribution of memory and predicate selectivities is given by a
:class:`~repro.core.bayesnet.DiscreteBayesNet`, and every DP step takes
its expectation over the exact joint — no product-of-marginals
approximation, no rebucketing.  Because the objective is still an
expectation over one fixed distribution, additivity and hence DP
optimality are untouched: this is Algorithm C/D generalised to
correlated parameters.

Network conventions: the memory variable is named by ``memory_var``
(default ``"M"``); each uncertain predicate selectivity is a variable
named by the predicate's *label*.  Predicates without a matching variable
use their point selectivity.  Latent variables (e.g. "load") may appear
freely; they are marginalised by the joint enumeration.
"""

from __future__ import annotations

from typing import FrozenSet, Optional

from ..core.bayesnet import Assignment, BayesNetError, DiscreteBayesNet
from ..costmodel.model import CostModel
from ..plans.nodes import Join, Plan, Scan, Sort
from ..plans.query import JoinQuery
from .costers import Coster
from .result import OptimizationResult
from .systemr import SystemRDP

__all__ = ["BayesNetCoster", "optimize_dependent", "plan_expected_cost_dependent"]


class BayesNetCoster(Coster):
    """Costs DP steps by exact expectation over a parameter Bayes net."""

    def __init__(
        self,
        net: DiscreteBayesNet,
        memory_var: str = "M",
        cost_model: Optional[CostModel] = None,
    ):
        super().__init__(cost_model)
        if memory_var not in net.names:
            raise BayesNetError(
                f"network has no memory variable {memory_var!r}"
            )
        self.net = net
        self.memory_var = memory_var

    # -- size arithmetic under an assignment -----------------------------

    def _pages_given(
        self, rels: FrozenSet[str], assignment: Assignment
    ) -> float:
        """Subset page count with selectivities taken from the assignment."""
        assert self.query is not None
        query = self.query
        rels = frozenset(rels)
        if len(rels) == 1:
            return query.pages_of(next(iter(rels)))
        preds = query.predicates_within(rels)
        if (
            len(rels) == 2
            and len(preds) == 1
            and preds[0].result_pages_override is not None
        ):
            return float(preds[0].result_pages_override)
        rows = 1.0
        for name in rels:
            rows *= query.rows_of(name)
        for p in preds:
            rows *= assignment.get(p.label, p.selectivity)
        return max(1.0, rows / query.rows_per_page)

    # -- hooks ------------------------------------------------------------

    def join_step_cost(
        self, method, left_rels, right_rels, phase,
        left_presorted=False, right_presorted=False,
    ):
        def step(assignment: Assignment) -> float:
            lp = self._pages_given(left_rels, assignment)
            rp = self._pages_given(right_rels, assignment)
            m = assignment[self.memory_var]
            return self._join_formula(
                method, lp, rp, m, left_presorted, right_presorted
            )

        return self.net.expectation(step)

    def write_cost(self, rels):
        return self.net.expectation(
            lambda a: self._pages_given(rels, a)
        )

    def final_sort_cost(self, rels, phase):
        return self.net.expectation(
            lambda a: self.cost_model.sort_cost(
                self._pages_given(rels, a), a[self.memory_var]
            )
        )


def optimize_dependent(
    query: JoinQuery,
    net: DiscreteBayesNet,
    memory_var: str = "M",
    cost_model: Optional[CostModel] = None,
    plan_space: str = "left-deep",
    allow_cross_products: bool = False,
) -> OptimizationResult:
    """LEC optimization under a dependent parameter joint."""
    coster = BayesNetCoster(net, memory_var=memory_var, cost_model=cost_model)
    engine = SystemRDP(
        coster,
        plan_space=plan_space,
        allow_cross_products=allow_cross_products,
    )
    return engine.optimize(query)


def plan_expected_cost_dependent(
    plan: Plan,
    query: JoinQuery,
    net: DiscreteBayesNet,
    memory_var: str = "M",
    cost_model: Optional[CostModel] = None,
) -> float:
    """``E[Φ(plan, V)]`` over the net's joint — independent evaluator.

    Walks the plan per joint assignment, instantiating a point world
    (selectivities from the assignment, memory likewise) and costing the
    plan in it; used to cross-check the DP and to score arbitrary plans
    (e.g. the independence-assuming choice) under the true joint.
    """
    cm = cost_model if cost_model is not None else CostModel()
    coster = BayesNetCoster(net, memory_var=memory_var, cost_model=cm)
    coster.bind(query)

    def cost_in(assignment: Assignment) -> float:
        total = 0.0
        m = assignment[memory_var]
        for node in plan.nodes():
            if isinstance(node, Scan):
                total += cm.scan_node_cost(node, query)
            elif isinstance(node, Sort):
                pages = coster._pages_given(node.child.relations(), assignment)
                total += cm.sort_cost(pages, m)
            else:
                assert isinstance(node, Join)
                lp = coster._pages_given(node.left.relations(), assignment)
                rp = coster._pages_given(node.right.relations(), assignment)
                target = node.output_order_label
                total += coster._join_formula(
                    node.method,
                    lp,
                    rp,
                    m,
                    node.left.order == target,
                    node.right.order == target,
                )
                if node is not plan.root:
                    total += coster._pages_given(node.relations(), assignment)
        return total

    return net.expectation(cost_in)
