"""The System-R dynamic program, generic over objective *and* plan space.

This is the engine of Section 2.2, working on the subset dag: node ``S``
holds the best plan(s) for computing ``⋈_{i∈S} A_i``.  Everything the
paper varies — point vs. expected vs. phase-marginal vs. multi-parameter
costing — is injected through a :class:`~repro.optimizer.costers.Coster`,
so Theorem 2.1 (LSC), Theorem 3.3 (Algorithm C) and Theorem 3.4 (dynamic
parameters) are all instances of this one dynamic program.  Which plan
*shapes* the program searches is injected through a
:class:`~repro.plans.space.PlanSpace`: the space supplies the per-level
candidate-subset lists and the per-subset (left, right) partitions, so
left-deep, zig-zag and bushy search differ only in the space object.

Bookkeeping details that matter for fidelity:

* **DP invariant.** An entry's cost covers its whole subtree *except* the
  write of its own (top) output; extending a subplan charges that write,
  and the root pays it only when an enforcer sort must re-read the result.
  This matches :meth:`repro.costmodel.model.CostModel.plan_cost` exactly.
* **Interesting orders.** Entries are kept per ``(subset, order)`` pair,
  so a sort-merge plan that delivers the query's required order survives
  even when a hash plan is cheaper before the final sort is accounted.
* **Top-k.** With ``top_k = c > 1`` the engine retains the top ``c``
  entries per (subset, order) and combines candidate lists with the
  Proposition 3.1 merge — this is Algorithm B's candidate generator.
* **Plan spaces.** ``"left-deep"`` reproduces the paper's search space;
  ``"zig-zag"`` adds mirrored splits; ``"bushy"`` enumerates all
  partitions (the extension the paper defers).  The enlarged spaces are
  pruned with Chen & Schneider intermediate-size lower bounds: a
  partition whose children plus input-read bound cannot beat the worst
  retained entry of every reachable order bucket is skipped.
* **SPJU.** A :class:`~repro.plans.query.JoinQuery` that is actually a
  :class:`~repro.plans.spju.UnionQuery` is optimized arm by arm (the DP
  runs once per arm — predicates never cross arms) and combined under a
  single :class:`~repro.plans.nodes.Union` root, with the union's
  streaming/dedup overhead supplied by the coster.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence

from ..core.context import OptimizationContext
from ..core.parallel import get_pool
from ..plans.nodes import Join, Plan, PlanNode, Project, Scan, Sort
from ..plans.nodes import Union as UnionNode
from ..plans.properties import AccessPath, order_from_join
from ..plans.query import JoinQuery, QueryError
from ..plans.space import PlanSpace
from ..plans.spju import UnionQuery
from .costers import Coster
from .errors import OptimizerConfigError
from .result import OptimizationResult, OptimizerStats, PlanChoice
from .topk import TopKList, merge_top_combinations

__all__ = ["SystemRDP", "DPEntry"]

#: Table type: subset -> (output order -> retained entries).
_Table = Dict[FrozenSet[str], Dict[Optional[str], "TopKList[DPEntry]"]]


@dataclass(frozen=True)
class DPEntry:
    """One retained subplan for a dag node.

    ``cost`` excludes the write of the entry's own output (see module
    docstring); ``order`` is the output order label, if any.
    """

    node: PlanNode
    cost: float
    order: Optional[str]


class SystemRDP:
    """Bottom-up join-order optimizer over the subset dag.

    Parameters
    ----------
    coster:
        Objective: point (LSC), expected (LEC), Markov, or multi-param.
    plan_space:
        A :class:`~repro.plans.space.PlanSpace` or its spelling:
        ``"left-deep"`` (paper heuristic 2), ``"zig-zag"``, ``"bushy"``,
        or ``"spju"`` (bushy + union blocks).
    allow_cross_products:
        Permit joining subsets with no connecting predicate (selectivity
        1 "trivially true" predicate, per the paper's expository device).
    top_k:
        Plans retained per (subset, order); ``> 1`` enables Algorithm B's
        candidate generation.
    context:
        Optional shared :class:`~repro.core.context.OptimizationContext`.
        When given (and matching the optimized query's statistics) the
        coster draws memoized sizes, distributions and step costs from
        it; otherwise a fresh context is created per :meth:`optimize`
        call.
    level_batching:
        Batch-evaluate each DP level's join steps through the coster's
        vectorized :meth:`~repro.optimizer.costers.Coster.
        prefetch_join_steps` before the per-subset scan.  Values are
        bit-identical to on-demand evaluation, so the chosen plans and
        costs never change.  ``None`` (default) enables batching exactly
        when the Chen & Schneider partition prune is off (left-deep
        spaces): under pruning, prefetching would evaluate steps the
        prune skips, inflating the ``formula_evaluations`` accounting
        the experiments rely on.  Pass ``True``/``False`` to force.
    parallelism:
        Fan each prefetched level batch out across a worker pool (see
        :func:`repro.core.parallel.parse_parallelism` for the accepted
        spellings: ``None``/``"off"``, an int worker count, ``"auto"``,
        ``"threads:4"``, ``"processes:2"``, or a live
        :class:`~repro.core.parallel.WorkerPool`).  Chunking is
        deterministic and results merge in fixed chunk order, so plans,
        objectives and ``formula_evaluations`` stay bit-identical to
        sequential evaluation.  Only effective together with level
        batching — sequential on-demand costing ignores it.
    """

    def __init__(
        self,
        coster: Coster,
        plan_space="left-deep",
        allow_cross_products: bool = False,
        top_k: int = 1,
        context: Optional[OptimizationContext] = None,
        level_batching: Optional[bool] = None,
        parallelism=None,
    ):
        try:
            space = PlanSpace.parse(plan_space)
        except ValueError as exc:
            raise OptimizerConfigError(str(exc)) from None
        if coster.requires_ordered_phases and not space.ordered_phases:
            raise OptimizerConfigError(
                f"{type(coster).__name__} needs canonical join phases; "
                f"the {space.key!r} plan space does not provide them"
            )
        if top_k < 1:
            raise OptimizerConfigError("top_k must be >= 1")
        self.coster = coster
        self.space = space
        # Canonical spelling kept for observability / legacy callers.
        self.plan_space = space.key
        self.allow_cross_products = allow_cross_products
        self.top_k = top_k
        self.context = context
        # Chen & Schneider lower-bound pruning pays off (and keeps legacy
        # instrumentation exact) only on the enlarged spaces.
        self._prune = space.shape != "left-deep"
        # Level batching mirrors on-demand evaluation bit-for-bit, but
        # under pruning it would evaluate steps the prune skips — so the
        # default ties it to the prune being off.
        self._batch_steps = (
            (not self._prune) if level_batching is None else bool(level_batching)
        )
        # Resolved once: repeated optimize() calls reuse the same warm
        # registry pool (or the caller's own WorkerPool instance).
        self._pool = get_pool(parallelism)

    # ------------------------------------------------------------------

    def optimize(self, query: JoinQuery) -> OptimizationResult:
        """Run the dynamic program and return the chosen plan.

        With ``top_k > 1`` the result's ``candidates`` list holds the top
        ``k`` complete plans (best first); otherwise just the winner.
        Union blocks (:class:`~repro.plans.spju.UnionQuery`) are routed
        through the per-arm SPJU path.
        """
        if isinstance(query, UnionQuery):
            return self._optimize_union(query)
        # bind() falls back to a fresh private context when the shared one
        # was built for different statistics — stale reuse is structurally
        # impossible, not merely discouraged.
        self.coster.bind(query, self.context)
        stats = OptimizerStats()
        evals_before = self.coster.cost_model.eval_count

        names = query.relation_names()
        table = self._run_dp(query, names, stats)

        full = frozenset(names)
        if full not in table or not self._entries_of(table, full):
            raise QueryError(
                "no plan found: the join graph is disconnected "
                "(pass allow_cross_products=True to permit cross joins)"
            )

        choices = self._finalize(full, query, table)
        stats.subsets_explored = sum(1 for s in table if self._entries_of(table, s))
        stats.formula_evaluations = self.coster.cost_model.eval_count - evals_before
        best = choices[0]
        kept = choices[: self.top_k] if self.top_k > 1 else [best]
        return OptimizationResult(best=best, candidates=kept, stats=stats)

    # ------------------------------------------------------------------
    # DP internals
    # ------------------------------------------------------------------

    def _run_dp(
        self, query: JoinQuery, names: Sequence[str], stats: OptimizerStats
    ) -> _Table:
        """Fill the subset table for ``names`` (one SPJ block).

        Levels come from :meth:`PlanSpace.level_candidates` as explicit
        lists — level ``k`` depends only on levels ``< k``, so a sharded
        serving tier can fan one level's subsets out to workers.
        """
        table: _Table = {}

        # Depth 1: access paths for the stored relations.  A relation with
        # an index over its local filter gets two candidate paths; the
        # per-(subset, order) TopKList keeps the best (or the top k).
        for name in names:
            paths = [Scan(table=name)]
            if query.relation(name).has_index_path():
                paths.append(Scan(table=name, access=AccessPath.INDEX_SCAN))
            bucket: TopKList[DPEntry] = TopKList(self.top_k)
            for scan in paths:
                entry = DPEntry(
                    node=scan, cost=self.coster.access_cost(scan), order=None
                )
                bucket.offer(entry.cost, entry)
                stats.entries_offered += 1
            table[frozenset((name,))] = {None: bucket}

        # Depths 2..n.
        for size in range(2, len(names) + 1):
            level = self.space.level_candidates(
                query,
                size,
                allow_cross_products=self.allow_cross_products,
                names=names,
            )
            if self._batch_steps:
                self._prefetch_level(level, query, table)
            for subset in level:
                self._build_subset(subset, query, table, stats)
        return table

    def _prefetch_level(
        self,
        level: Sequence[FrozenSet[str]],
        query: JoinQuery,
        table: _Table,
    ) -> None:
        """Hand one DP level's join steps to the coster in a single batch.

        The request list replays :meth:`_build_subset`'s filtering exactly
        — partitions absent from the table, cross products without
        ``allow_cross_products`` and empty order buckets are skipped — so
        a coster's batched path evaluates precisely the steps the
        per-subset scan would request on demand.  Level ``k`` partitions
        only read levels ``< k``, all already in ``table``, so batching
        ahead of the subset loop sees the same state.
        """
        requests = []
        for subset in level:
            phase = len(subset) - 2
            for left_rels, right_rels in self.space.partitions(subset):
                if left_rels not in table or right_rels not in table:
                    continue
                preds = [
                    p
                    for p in query.predicates_within(subset)
                    if (p.left in left_rels) != (p.right in left_rels)
                ]
                if not preds and not self.allow_cross_products:
                    continue
                order_target = preds[0].order_label if preds else None
                combos = set()
                for lorder, lbucket in table[left_rels].items():
                    if not any(True for _ in lbucket.items()):
                        continue
                    for rorder, rbucket in table[right_rels].items():
                        if not any(True for _ in rbucket.items()):
                            continue
                        combos.add(
                            (
                                order_target is not None and lorder == order_target,
                                order_target is not None and rorder == order_target,
                            )
                        )
                for lsorted, rsorted in sorted(combos):
                    for method in self.coster.methods:
                        requests.append(
                            (method, left_rels, right_rels, phase, lsorted, rsorted)
                        )
        if requests:
            self.coster.prefetch_join_steps(requests, pool=self._pool)

    def _build_subset(
        self,
        subset: FrozenSet[str],
        query: JoinQuery,
        table: _Table,
        stats: OptimizerStats,
    ) -> None:
        buckets: Dict[Optional[str], TopKList[DPEntry]] = {}
        phase = len(subset) - 2
        for left_rels, right_rels in self.space.partitions(subset):
            if left_rels not in table or right_rels not in table:
                continue
            preds = [
                p
                for p in query.predicates_within(subset)
                if (p.left in left_rels) != (p.right in left_rels)
            ]
            if not preds and not self.allow_cross_products:
                continue
            if preds:
                label = preds[0].label
                order_target: Optional[str] = preds[0].order_label
            else:
                label = f"cross[{min(right_rels)}]"
                order_target = None
            if self._prune and self._dominated(
                left_rels, right_rels, order_target or label, buckets, table
            ):
                stats.partitions_pruned += 1
                continue
            left_write = (
                self.coster.write_cost(left_rels) if len(left_rels) > 1 else 0.0
            )
            right_write = (
                self.coster.write_cost(right_rels) if len(right_rels) > 1 else 0.0
            )
            pipelined = self.coster.cost_model.pipelined_methods
            # Interesting orders: an input whose order matches this join's
            # order label earns sort-merge credit, so inputs must be
            # combined *per order group* — pooling across orders could
            # discard an order-carrying subplan that wins downstream.
            step_cache: Dict[tuple, float] = {}
            for lorder, lbucket in table[left_rels].items():
                for rorder, rbucket in table[right_rels].items():
                    left_entries = [e for _, e in lbucket.items()]
                    right_entries = [e for _, e in rbucket.items()]
                    if not left_entries or not right_entries:
                        continue
                    lsorted = order_target is not None and lorder == order_target
                    rsorted = order_target is not None and rorder == order_target
                    merged = merge_top_combinations(
                        [e.cost for e in left_entries],
                        [e.cost for e in right_entries],
                        self.top_k,
                    )
                    stats.merge_probes += merged.probes
                    for method in self.coster.methods:
                        key = (method, lsorted, rsorted)
                        if key not in step_cache:
                            step_cache[key] = self.coster.join_step_cost(
                                method,
                                left_rels,
                                right_rels,
                                phase,
                                left_presorted=lsorted,
                                right_presorted=rsorted,
                            )
                        step = step_cache[key]
                        # A pipelined nested-loop join streams its outer
                        # (left) input: no materialisation write for it.
                        write_children = right_write + (
                            0.0 if method in pipelined else left_write
                        )
                        order = order_from_join(
                            method, order_target if order_target else label
                        )
                        bucket = buckets.setdefault(order, TopKList(self.top_k))
                        for combined, li, ri in merged.combinations:
                            total = combined + step + write_children
                            node = self.space.join(
                                left=left_entries[li].node,
                                right=right_entries[ri].node,
                                method=method,
                                predicate_label=label,
                                order_label=order_target,
                            )
                            bucket.offer(
                                total, DPEntry(node=node, cost=total, order=order)
                            )
                            stats.entries_offered += 1
        if buckets:
            table[subset] = buckets

    def _dominated(
        self,
        left_rels: FrozenSet[str],
        right_rels: FrozenSet[str],
        order_label: str,
        buckets: Dict[Optional[str], "TopKList[DPEntry]"],
        table: _Table,
    ) -> bool:
        """Chen & Schneider partition prune (sound, never affects results).

        Every join method reads both inputs at least once, so
        ``lo(L) + lo(R)`` (the coster's page lower bounds) plus the
        cheapest retained child entries lower-bounds every candidate this
        partition can produce.  The partition is skipped only when that
        bound *strictly* exceeds the worst retained cost of every order
        bucket the partition could feed — so no entry that could ever be
        kept (or tie) is lost.
        """
        reachable = {order_from_join(m, order_label) for m in self.coster.methods}
        worst = None
        for key in reachable:
            bucket = buckets.get(key)
            if bucket is None:
                return False  # an open bucket accepts anything
            bucket_worst = bucket.worst_cost()
            if bucket_worst is None:
                return False  # bucket not full yet
            worst = bucket_worst if worst is None else max(worst, bucket_worst)
        lower = (
            self._min_cost(table, left_rels)
            + self._min_cost(table, right_rels)
            + self.coster.pages_lower_bound(left_rels)
            + self.coster.pages_lower_bound(right_rels)
        )
        return lower > worst

    @staticmethod
    def _min_cost(table: _Table, rels: FrozenSet[str]) -> float:
        best = None
        for bucket in table[rels].values():
            items = bucket.items()
            if items and (best is None or items[0][0] < best):
                best = items[0][0]
        return best if best is not None else 0.0

    @staticmethod
    def _entries_of(table, subset) -> List[DPEntry]:
        if subset not in table:
            return []
        out: List[DPEntry] = []
        for bucket in table[subset].values():
            out.extend(entry for _, entry in bucket.items())
        return out

    def _finalize(
        self,
        full: FrozenSet[str],
        query: JoinQuery,
        table,
    ) -> List[PlanChoice]:
        """Apply required-order enforcement, projection, and rank plans."""
        phase = max(0, len(full) - 2)
        needs_order = query.required_order is not None and len(full) > 1
        project = getattr(query, "projection_ratio", 1.0) < 1.0
        choices: List[PlanChoice] = []
        for _order, bucket in table[full].items():
            for cost, entry in bucket.items():
                total = cost
                node: PlanNode = entry.node
                if needs_order and entry.order != query.required_order:
                    total += self.coster.write_cost(full)
                    total += self.coster.final_sort_cost(full, phase)
                    node = Sort(child=node, sort_order=query.required_order)
                if project:
                    # Projection streams at the block root: free, and the
                    # plan's output size reports the projected width.
                    node = Project(child=node)
                choices.append(PlanChoice(plan=Plan(node), objective=total))
        choices.sort(key=lambda c: c.objective)
        return choices

    # ------------------------------------------------------------------
    # SPJU blocks
    # ------------------------------------------------------------------

    def _optimize_union(self, query: UnionQuery) -> OptimizationResult:
        """Optimize a union block: per-arm DP + union overhead.

        Arms share no predicates, so each arm's dag is independent; the
        chosen arm plans are combined under one Union root.  Arm outputs
        stream under UNION ALL (no materialisation write — the same
        invariant as the DP root) and are charged projected writes plus a
        dedup sort under DISTINCT, via :meth:`Coster.union_overhead`.
        """
        if not self.space.supports_union:
            raise OptimizerConfigError(
                f"query is a union block but plan space {self.space.key!r} "
                "does not admit union plans; use plan_space='spju' "
                "(or another '+union' space)"
            )
        if self.coster.requires_ordered_phases:
            raise OptimizerConfigError(
                f"{type(self.coster).__name__} needs canonical join phases; "
                "union plans do not have them"
            )
        self.coster.bind(query, self.context)
        stats = OptimizerStats()
        evals_before = self.coster.cost_model.eval_count

        arm_nodes: List[PlanNode] = []
        arm_info = []
        total = 0.0
        explored = 0
        for arm in query.arms:
            names = [r.name for r in arm.relations]
            table = self._run_dp(query, names, stats)
            full = frozenset(names)
            entries = self._entries_of(table, full)
            if not entries:
                raise QueryError(
                    f"no plan found for union arm over {sorted(names)}: its "
                    "join graph is disconnected (pass "
                    "allow_cross_products=True to permit cross joins)"
                )
            best = min(entries, key=lambda e: e.cost)
            node: PlanNode = best.node
            materialised = isinstance(node, Join)
            if arm.projection_ratio < 1.0:
                node = Project(child=node)
            arm_nodes.append(node)
            arm_info.append((full, arm.projection_ratio, materialised))
            total += best.cost
            explored += sum(1 for s in table if self._entries_of(table, s))

        total += self.coster.union_overhead(arm_info, query.distinct)
        root = UnionNode(inputs=tuple(arm_nodes), distinct=query.distinct)
        choice = PlanChoice(plan=Plan(root), objective=total)
        stats.subsets_explored = explored
        stats.formula_evaluations = self.coster.cost_model.eval_count - evals_before
        return OptimizationResult(best=choice, candidates=[choice], stats=stats)
