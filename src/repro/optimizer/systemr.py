"""The System-R dynamic program, generic over the costing objective.

This is the engine of Section 2.2, working on the subset dag: node ``S``
holds the best plan(s) for computing ``⋈_{i∈S} A_i``.  Everything the
paper varies — point vs. expected vs. phase-marginal vs. multi-parameter
costing — is injected through a :class:`~repro.optimizer.costers.Coster`,
so Theorem 2.1 (LSC), Theorem 3.3 (Algorithm C) and Theorem 3.4 (dynamic
parameters) are all instances of this one dynamic program.

Bookkeeping details that matter for fidelity:

* **DP invariant.** An entry's cost covers its whole subtree *except* the
  write of its own (top) output; extending a subplan charges that write,
  and the root pays it only when an enforcer sort must re-read the result.
  This matches :meth:`repro.costmodel.model.CostModel.plan_cost` exactly.
* **Interesting orders.** Entries are kept per ``(subset, order)`` pair,
  so a sort-merge plan that delivers the query's required order survives
  even when a hash plan is cheaper before the final sort is accounted.
* **Top-k.** With ``top_k = c > 1`` the engine retains the top ``c``
  entries per (subset, order) and combines candidate lists with the
  Proposition 3.1 merge — this is Algorithm B's candidate generator.
* **Plan spaces.** ``"left-deep"`` reproduces the paper's search space;
  ``"bushy"`` enumerates all partitions (the extension the paper defers).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..core.context import OptimizationContext
from ..plans.nodes import Join, Plan, PlanNode, Scan, Sort
from ..plans.properties import order_from_join
from ..plans.query import JoinQuery, QueryError
from .costers import Coster
from .errors import OptimizerConfigError
from .result import OptimizationResult, OptimizerStats, PlanChoice
from .topk import TopKList, merge_top_combinations

__all__ = ["SystemRDP", "DPEntry"]


@dataclass(frozen=True)
class DPEntry:
    """One retained subplan for a dag node.

    ``cost`` excludes the write of the entry's own output (see module
    docstring); ``order`` is the output order label, if any.
    """

    node: PlanNode
    cost: float
    order: Optional[str]


class SystemRDP:
    """Bottom-up join-order optimizer over the subset dag.

    Parameters
    ----------
    coster:
        Objective: point (LSC), expected (LEC), Markov, or multi-param.
    plan_space:
        ``"left-deep"`` (paper heuristic 2) or ``"bushy"``.
    allow_cross_products:
        Permit joining subsets with no connecting predicate (selectivity
        1 "trivially true" predicate, per the paper's expository device).
    top_k:
        Plans retained per (subset, order); ``> 1`` enables Algorithm B's
        candidate generation.
    context:
        Optional shared :class:`~repro.core.context.OptimizationContext`.
        When given (and matching the optimized query's statistics) the
        coster draws memoized sizes, distributions and step costs from
        it; otherwise a fresh context is created per :meth:`optimize`
        call.
    """

    def __init__(
        self,
        coster: Coster,
        plan_space: str = "left-deep",
        allow_cross_products: bool = False,
        top_k: int = 1,
        context: Optional[OptimizationContext] = None,
    ):
        if plan_space not in ("left-deep", "bushy"):
            raise OptimizerConfigError(f"unknown plan space {plan_space!r}")
        if plan_space == "bushy" and not coster.supports_bushy():
            raise OptimizerConfigError(
                f"{type(coster).__name__} does not support bushy plans"
            )
        if top_k < 1:
            raise OptimizerConfigError("top_k must be >= 1")
        self.coster = coster
        self.plan_space = plan_space
        self.allow_cross_products = allow_cross_products
        self.top_k = top_k
        self.context = context

    # ------------------------------------------------------------------

    def optimize(self, query: JoinQuery) -> OptimizationResult:
        """Run the dynamic program and return the chosen plan.

        With ``top_k > 1`` the result's ``candidates`` list holds the top
        ``k`` complete plans (best first); otherwise just the winner.
        """
        # bind() falls back to a fresh private context when the shared one
        # was built for different statistics — stale reuse is structurally
        # impossible, not merely discouraged.
        self.coster.bind(query, self.context)
        stats = OptimizerStats()
        evals_before = self.coster.cost_model.eval_count

        names = query.relation_names()
        table: Dict[FrozenSet[str], Dict[Optional[str], TopKList[DPEntry]]] = {}

        # Depth 1: access paths for the stored relations.  A relation with
        # an index over its local filter gets two candidate paths; the
        # per-(subset, order) TopKList keeps the best (or the top k).
        from ..plans.properties import AccessPath

        for name in names:
            paths = [Scan(table=name)]
            if query.relation(name).has_index_path():
                paths.append(Scan(table=name, access=AccessPath.INDEX_SCAN))
            bucket = TopKList(self.top_k)
            for scan in paths:
                entry = DPEntry(
                    node=scan, cost=self.coster.access_cost(scan), order=None
                )
                bucket.offer(entry.cost, entry)
                stats.entries_offered += 1
            table[frozenset((name,))] = {None: bucket}

        # Depths 2..n.
        for size in range(2, len(names) + 1):
            for combo in itertools.combinations(names, size):
                subset = frozenset(combo)
                if not self.allow_cross_products and not query.is_connected(subset):
                    continue
                self._build_subset(subset, query, table, stats)

        full = frozenset(names)
        if full not in table or not self._entries_of(table, full):
            raise QueryError(
                "no plan found: the join graph is disconnected "
                "(pass allow_cross_products=True to permit cross joins)"
            )

        choices = self._finalize(full, query, table)
        stats.subsets_explored = sum(1 for s in table if self._entries_of(table, s))
        stats.formula_evaluations = self.coster.cost_model.eval_count - evals_before
        best = choices[0]
        kept = choices[: self.top_k] if self.top_k > 1 else [best]
        return OptimizationResult(best=best, candidates=kept, stats=stats)

    # ------------------------------------------------------------------
    # DP internals
    # ------------------------------------------------------------------

    def _build_subset(
        self,
        subset: FrozenSet[str],
        query: JoinQuery,
        table: Dict[FrozenSet[str], Dict[Optional[str], TopKList[DPEntry]]],
        stats: OptimizerStats,
    ) -> None:
        buckets: Dict[Optional[str], TopKList[DPEntry]] = {}
        phase = len(subset) - 2
        for left_rels, right_rels in self._partitions(subset):
            if left_rels not in table or right_rels not in table:
                continue
            preds = [
                p
                for p in query.predicates_within(subset)
                if (p.left in left_rels) != (p.right in left_rels)
            ]
            if not preds and not self.allow_cross_products:
                continue
            if preds:
                label = preds[0].label
                order_target: Optional[str] = preds[0].order_label
            else:
                label = f"cross[{min(right_rels)}]"
                order_target = None
            left_write = (
                self.coster.write_cost(left_rels) if len(left_rels) > 1 else 0.0
            )
            right_write = (
                self.coster.write_cost(right_rels) if len(right_rels) > 1 else 0.0
            )
            pipelined = self.coster.cost_model.pipelined_methods
            # Interesting orders: an input whose order matches this join's
            # order label earns sort-merge credit, so inputs must be
            # combined *per order group* — pooling across orders could
            # discard an order-carrying subplan that wins downstream.
            step_cache: Dict[tuple, float] = {}
            for lorder, lbucket in table[left_rels].items():
                for rorder, rbucket in table[right_rels].items():
                    left_entries = [e for _, e in lbucket.items()]
                    right_entries = [e for _, e in rbucket.items()]
                    if not left_entries or not right_entries:
                        continue
                    lsorted = order_target is not None and lorder == order_target
                    rsorted = order_target is not None and rorder == order_target
                    merged = merge_top_combinations(
                        [e.cost for e in left_entries],
                        [e.cost for e in right_entries],
                        self.top_k,
                    )
                    stats.merge_probes += merged.probes
                    for method in self.coster.methods:
                        key = (method, lsorted, rsorted)
                        if key not in step_cache:
                            step_cache[key] = self.coster.join_step_cost(
                                method,
                                left_rels,
                                right_rels,
                                phase,
                                left_presorted=lsorted,
                                right_presorted=rsorted,
                            )
                        step = step_cache[key]
                        # A pipelined nested-loop join streams its outer
                        # (left) input: no materialisation write for it.
                        write_children = right_write + (
                            0.0 if method in pipelined else left_write
                        )
                        order = order_from_join(
                            method, order_target if order_target else label
                        )
                        bucket = buckets.setdefault(order, TopKList(self.top_k))
                        for combined, li, ri in merged.combinations:
                            total = combined + step + write_children
                            node = Join(
                                left=left_entries[li].node,
                                right=right_entries[ri].node,
                                method=method,
                                predicate_label=label,
                                order_label=order_target,
                            )
                            bucket.offer(
                                total, DPEntry(node=node, cost=total, order=order)
                            )
                            stats.entries_offered += 1
        if buckets:
            table[subset] = buckets

    def _partitions(
        self, subset: FrozenSet[str]
    ) -> List[Tuple[FrozenSet[str], FrozenSet[str]]]:
        """Ordered (left, right) splits of ``subset`` for the plan space."""
        members = sorted(subset)
        if self.plan_space == "left-deep":
            return [
                (subset - {m}, frozenset((m,)))
                for m in members
            ]
        # Bushy: all ordered pairs of complementary non-empty subsets.  The
        # ordered enumeration matters because nested-loop cost is
        # asymmetric in outer/inner.
        out: List[Tuple[FrozenSet[str], FrozenSet[str]]] = []
        n = len(members)
        for mask in range(1, (1 << n) - 1):
            left = frozenset(members[i] for i in range(n) if mask & (1 << i))
            out.append((left, subset - left))
        return out

    @staticmethod
    def _entries_of(table, subset) -> List[DPEntry]:
        if subset not in table:
            return []
        out: List[DPEntry] = []
        for bucket in table[subset].values():
            out.extend(entry for _, entry in bucket.items())
        return out

    def _finalize(
        self,
        full: FrozenSet[str],
        query: JoinQuery,
        table,
    ) -> List[PlanChoice]:
        """Apply required-order enforcement and rank complete plans."""
        phase = max(0, len(full) - 2)
        needs_order = query.required_order is not None and len(full) > 1
        choices: List[PlanChoice] = []
        for _order, bucket in table[full].items():
            for cost, entry in bucket.items():
                total = cost
                node: PlanNode = entry.node
                if needs_order and entry.order != query.required_order:
                    total += self.coster.write_cost(full)
                    total += self.coster.final_sort_cost(full, phase)
                    node = Sort(child=node, sort_order=query.required_order)
                choices.append(PlanChoice(plan=Plan(node), objective=total))
        choices.sort(key=lambda c: c.objective)
        return choices
