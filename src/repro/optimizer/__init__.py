"""System-R engine: DP over the subset dag, costers, top-k, ground truth."""

from .costers import (
    Coster,
    ExpectedCoster,
    MarkovCoster,
    MultiParamCoster,
    PointCoster,
)
from .errors import OptimizerConfigError
from .dependent import (
    BayesNetCoster,
    optimize_dependent,
    plan_expected_cost_dependent,
)
from .exhaustive import enumerate_left_deep_plans, enumerate_plans, exhaustive_best
from .facade import clear_context_cache, last_context, optimize
from .randomized import (
    RandomizedResult,
    iterative_improvement,
    simulated_annealing,
)
from .result import OptimizationResult, OptimizerStats, PlanChoice
from .systemr import DPEntry, SystemRDP
from .topk import MergeResult, TopKList, merge_top_combinations

__all__ = [
    "SystemRDP",
    "OptimizerConfigError",
    "optimize",
    "last_context",
    "clear_context_cache",
    "DPEntry",
    "Coster",
    "PointCoster",
    "ExpectedCoster",
    "MarkovCoster",
    "MultiParamCoster",
    "OptimizationResult",
    "OptimizerStats",
    "PlanChoice",
    "TopKList",
    "MergeResult",
    "merge_top_combinations",
    "enumerate_left_deep_plans",
    "enumerate_plans",
    "exhaustive_best",
    "BayesNetCoster",
    "optimize_dependent",
    "plan_expected_cost_dependent",
    "RandomizedResult",
    "iterative_improvement",
    "simulated_annealing",
]
