"""Top-k plan bookkeeping and the Proposition 3.1 combination merge.

Algorithm B extends the System-R dynamic program to retain the top ``c``
plans per dag node instead of the single best.  Combining the top ``c``
subplans for ``S_j`` with the top ``c`` access plans for ``A_j`` looks
like ``c²`` work, but Proposition 3.1 shows that because both lists are
sorted and the combined cost is the *sum* of the parts, only pairs
``(i, k)`` with ``i·k <= c`` can make the top ``c`` — at most
``c + c·ln c`` probes.  :func:`merge_top_combinations` implements exactly
that probe set and reports how many probes it made, which experiment E8
checks against the bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generic, List, Optional, Sequence, Tuple, TypeVar

__all__ = ["TopKList", "merge_top_combinations", "MergeResult"]

T = TypeVar("T")


class TopKList(Generic[T]):
    """Maintains the ``k`` lowest-cost items seen, sorted ascending.

    Insertion is O(k) (the lists involved are tiny: ``k`` is the paper's
    ``c``, a small constant), and ties are broken by insertion order so
    results are deterministic.
    """

    __slots__ = ("k", "_items", "_counter")

    def __init__(self, k: int):
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self._items: List[Tuple[float, int, T]] = []
        self._counter = 0

    def offer(self, cost: float, item: T) -> bool:
        """Insert if the item makes the current top k; return whether it did."""
        if len(self._items) == self.k and cost >= self._items[-1][0]:
            return False
        entry = (cost, self._counter, item)
        self._counter += 1
        lo, hi = 0, len(self._items)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._items[mid][:2] < entry[:2]:
                lo = mid + 1
            else:
                hi = mid
        self._items.insert(lo, entry)
        if len(self._items) > self.k:
            self._items.pop()
        return True

    def worst_cost(self) -> Optional[float]:
        """Cost of the k-th item, or None when fewer than k are held."""
        if len(self._items) < self.k:
            return None
        return self._items[-1][0]

    def items(self) -> List[Tuple[float, T]]:
        """The held items as ``(cost, item)`` pairs, ascending cost."""
        return [(c, it) for c, _, it in self._items]

    def best(self) -> Tuple[float, T]:
        """The single cheapest item; raises when empty."""
        if not self._items:
            raise IndexError("TopKList is empty")
        c, _, it = self._items[0]
        return c, it

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)


@dataclass
class MergeResult(Generic[T]):
    """Output of :func:`merge_top_combinations`.

    Attributes
    ----------
    combinations:
        Up to ``c`` ``(cost, left_index, right_index)`` triples, ascending.
    probes:
        Number of candidate pairs whose cost was computed — bounded by
        ``c + c·ln c`` (Proposition 3.1) and by ``len(left)·len(right)``.
    """

    combinations: List[Tuple[float, int, int]]
    probes: int


def merge_top_combinations(
    left_costs: Sequence[float],
    right_costs: Sequence[float],
    c: int,
) -> MergeResult:
    """Top ``c`` sums ``left_costs[i] + right_costs[k]`` via Prop 3.1.

    Both inputs must be sorted ascending.  Only pairs with
    ``(i+1)·(k+1) <= c`` are probed: any pair beyond that frontier is
    dominated by at least ``c`` cheaper pairs, so it cannot appear in the
    answer.
    """
    if c < 1:
        raise ValueError("c must be >= 1")
    for name, seq in (("left_costs", left_costs), ("right_costs", right_costs)):
        for a, b in zip(seq, seq[1:]):
            if b < a:
                raise ValueError(f"{name} must be sorted ascending")
    top: TopKList[Tuple[int, int]] = TopKList(c)
    probes = 0
    for i, lc in enumerate(left_costs, start=1):
        max_k = c // i
        if max_k == 0:
            break
        for k, rc in enumerate(right_costs[:max_k], start=1):
            probes += 1
            top.offer(lc + rc, (i - 1, k - 1))
    combos = [(cost, ij[0], ij[1]) for cost, ij in top.items()]
    return MergeResult(combinations=combos, probes=probes)
