"""Table- and column-level statistics consumed by the optimizer.

This is the paper's category-1/-2 parameter plumbing: the DBMS "typically
maintains estimates" of data properties (cardinalities, value
distributions) and derives predicate selectivities from them.  The
:class:`StatisticsCatalog` stores, per table, a :class:`TableStats` with
row/page counts and per-column histograms, and answers both the classical
*point-estimate* queries (for the LSC baseline) and *distributional*
queries (for the LEC algorithms).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional


from ..core.distributions import DiscreteDistribution, point_mass
from .histogram import EquiDepthHistogram, Histogram
from .schema import Catalog, SchemaError, Table

__all__ = ["TableStats", "StatisticsCatalog", "default_join_selectivity"]


@dataclass
class TableStats:
    """Statistics for one table.

    ``size_distribution`` optionally replaces the point page count with a
    distribution — e.g. for remote tables whose cardinality is only known
    approximately — and is what Algorithm D consumes for ``|A_j|``.
    """

    n_rows: int
    n_pages: int
    histograms: Dict[str, Histogram] = field(default_factory=dict)
    n_distinct: Dict[str, int] = field(default_factory=dict)
    size_distribution: Optional[DiscreteDistribution] = None

    def pages_distribution(self) -> DiscreteDistribution:
        """Distribution of the table size in pages (point mass by default)."""
        if self.size_distribution is not None:
            return self.size_distribution
        return point_mass(float(self.n_pages))

    def distinct_values(self, column: str) -> Optional[int]:
        """Distinct-count estimate for a column, if known."""
        if column in self.n_distinct:
            return self.n_distinct[column]
        hist = self.histograms.get(column)
        if hist is not None:
            return hist.n_distinct()
        return None


def default_join_selectivity(
    left: TableStats, right: TableStats, left_col: str, right_col: str
) -> float:
    """The classical System-R equijoin selectivity ``1 / max(V(l), V(r))``.

    Falls back to ``1 / max(rows)`` (a key-foreign-key guess) when distinct
    counts are unavailable.
    """
    vl = left.distinct_values(left_col)
    vr = right.distinct_values(right_col)
    candidates = [v for v in (vl, vr) if v]
    if candidates:
        return 1.0 / max(candidates)
    denom = max(left.n_rows, right.n_rows, 1)
    return 1.0 / denom


class StatisticsCatalog:
    """Statistics for every table in a :class:`~repro.catalog.schema.Catalog`.

    The catalog carries a monotonically increasing :attr:`version`,
    bumped by every mutation (``analyze_column``,
    ``set_size_distribution``, or an explicit :meth:`bump_version` after
    out-of-band edits to a :class:`TableStats`).  The serving layer's
    plan cache embeds this version in its keys, so a plan optimized
    against stale statistics can never be served after an ANALYZE.
    """

    def __init__(self, schema: Catalog, *, version_start: int = 0):
        """``version_start`` lets a rebuilt catalog continue its
        predecessor's version sequence instead of restarting at 0 —
        restarting could collide with a version already baked into plan
        cache keys and resurrect stale plans."""
        self.schema = schema
        self._version = int(version_start)
        self._stats: Dict[str, TableStats] = {
            table.name: self._fresh_table_stats(table) for table in schema
        }

    @staticmethod
    def _fresh_table_stats(table: Table) -> TableStats:
        return TableStats(
            n_rows=table.n_rows,
            n_pages=table.n_pages,
            n_distinct={
                c.name: c.n_distinct
                for c in table.columns
                if c.n_distinct is not None
            },
        )

    # ------------------------------------------------------------------
    # Versioning (cache-invalidation hook)
    # ------------------------------------------------------------------

    @property
    def version(self) -> int:
        """Monotonically increasing mutation counter."""
        return self._version

    def bump_version(self) -> int:
        """Record an out-of-band statistics mutation; returns the new version."""
        self._version += 1
        return self._version

    def refresh_schema(self) -> int:
        """Synchronise per-table stats with the schema (the DDL hook).

        New tables get fresh :class:`TableStats`, dropped tables are
        forgotten, existing tables keep their analyzed state — all *in
        place*, so external holders of this catalog (a serving layer
        keyed on :attr:`version`) observe the DDL as a version bump
        rather than being stranded on a replaced object.
        """
        live = set()
        for table in self.schema:
            live.add(table.name)
            if table.name not in self._stats:
                self._stats[table.name] = self._fresh_table_stats(table)
        for name in list(self._stats):
            if name not in live:
                del self._stats[name]
        return self.bump_version()

    # ------------------------------------------------------------------
    # Maintenance (the ANALYZE path)
    # ------------------------------------------------------------------

    def analyze_column(
        self,
        table: str,
        column: str,
        values: Iterable[float],
        n_buckets: int = 10,
    ) -> Histogram:
        """Build (and store) an equi-depth histogram from column data."""
        stats = self.table_stats(table)
        if not self.schema.table(table).has_column(column):
            raise SchemaError(f"no column {column!r} in table {table!r}")
        hist = EquiDepthHistogram.build(values, n_buckets=n_buckets)
        stats.histograms[column] = hist
        stats.n_distinct[column] = hist.n_distinct()
        self._version += 1
        return hist

    def set_size_distribution(
        self, table: str, dist: DiscreteDistribution
    ) -> None:
        """Attach an uncertain page-count distribution to a table."""
        self.table_stats(table).size_distribution = dist
        self._version += 1

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------

    def table_stats(self, table: str) -> TableStats:
        """Statistics record for ``table``."""
        try:
            return self._stats[table]
        except KeyError:
            raise SchemaError(f"no statistics for table {table!r}") from None

    def pages(self, table: str) -> int:
        """Point estimate of a table's size in pages."""
        return self.table_stats(table).n_pages

    def rows(self, table: str) -> int:
        """Point estimate of a table's row count."""
        return self.table_stats(table).n_rows

    def pages_distribution(self, table: str) -> DiscreteDistribution:
        """Distribution of a table's size in pages."""
        return self.table_stats(table).pages_distribution()

    def join_selectivity(
        self, left: str, right: str, left_col: str, right_col: str
    ) -> float:
        """Point equijoin selectivity between two table columns.

        Prefers the histogram bucket-overlap estimate when both columns
        have been analyzed (it accounts for partially aligned value
        ranges); otherwise falls back to the classical ``1/max(V)`` rule.
        """
        from .histogram import join_selectivity_from_histograms

        lh = self.table_stats(left).histograms.get(left_col)
        rh = self.table_stats(right).histograms.get(right_col)
        if lh is not None and rh is not None and lh.n_buckets and rh.n_buckets:
            return join_selectivity_from_histograms(lh, rh)
        return default_join_selectivity(
            self.table_stats(left), self.table_stats(right), left_col, right_col
        )

    def predicate_selectivity(
        self,
        table: str,
        column: str,
        kind: str,
        value: Optional[float] = None,
        lo: Optional[float] = None,
        hi: Optional[float] = None,
    ) -> float:
        """Point selectivity for a single-table predicate from a histogram."""
        stats = self.table_stats(table)
        hist = stats.histograms.get(column)
        if hist is None:
            raise SchemaError(
                f"no histogram for {table}.{column}; run analyze_column first"
            )
        if kind == "eq":
            if value is None:
                raise ValueError("kind='eq' requires value")
            return hist.selectivity_eq(value)
        if kind == "range":
            return hist.selectivity_range(lo, hi)
        raise ValueError(f"unknown predicate kind {kind!r}")
