"""Catalog substrate: schema, statistics, histograms and sampling.

The optimizer's view of the database: table/column/index definitions
(:mod:`~repro.catalog.schema`), size and value statistics with both point
and distributional selectivity estimation (:mod:`~repro.catalog.statistics`,
:mod:`~repro.catalog.histogram`), and sampling-based estimation with
posterior uncertainty (:mod:`~repro.catalog.sampling`).
"""

from .histogram import (
    EquiDepthHistogram,
    EquiWidthHistogram,
    Histogram,
    join_selectivity_from_histograms,
)
from .feedback import SelectivityFeedback
from .sampling import SampleEstimate, estimate_selectivity, selectivity_posterior
from .schema import Catalog, Column, Index, SchemaError, Table
from .statistics import StatisticsCatalog, TableStats, default_join_selectivity

__all__ = [
    "Catalog",
    "Column",
    "Index",
    "Table",
    "SchemaError",
    "Histogram",
    "EquiWidthHistogram",
    "EquiDepthHistogram",
    "join_selectivity_from_histograms",
    "StatisticsCatalog",
    "TableStats",
    "default_join_selectivity",
    "SelectivityFeedback",
    "SampleEstimate",
    "estimate_selectivity",
    "selectivity_posterior",
]
