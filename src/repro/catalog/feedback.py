"""Cardinality feedback: learn selectivity distributions from execution.

The paper's answer to "how do we get the probability distributions?" is
that "the DBMS in practice is constantly gathering statistical
information".  This module closes that loop for selectivities: every
executed join reports its measured input/output cardinalities
(:class:`~repro.engine.executor.JoinObservation`), the collector turns
each predicate's history into an *empirical selectivity distribution*,
and :meth:`SelectivityFeedback.apply_to_query` hands those distributions
straight to Algorithm D — so the optimizer's uncertainty model improves
with every query the system runs instead of being configured by hand.

Until enough observations accumulate, a log-spaced prior around the
catalog estimate is blended in, shrinking as evidence arrives.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List

import numpy as np

from ..core.distributions import DiscreteDistribution, from_samples, point_mass

if False:  # pragma: no cover - import cycle guard, typing only
    from ..plans.query import JoinQuery

__all__ = ["SelectivityFeedback"]


class SelectivityFeedback:
    """Accumulates observed join selectivities per predicate label.

    Parameters
    ----------
    n_buckets:
        Bucket count for the learned distributions.
    min_observations:
        Below this many observations the learned distribution is blended
        with the prior; with zero observations the prior is returned
        unchanged.
    prior_relative_error:
        Spread of the fallback prior built around a query's point
        estimate (log-spaced, mean-preserving), mirroring
        :func:`repro.workloads.queries.with_selectivity_uncertainty`.
    """

    def __init__(
        self,
        n_buckets: int = 6,
        min_observations: int = 5,
        prior_relative_error: float = 1.0,
    ):
        if n_buckets < 1:
            raise ValueError("n_buckets must be >= 1")
        if min_observations < 1:
            raise ValueError("min_observations must be >= 1")
        self.n_buckets = n_buckets
        self.min_observations = min_observations
        self.prior_relative_error = prior_relative_error
        self._history: Dict[str, List[float]] = defaultdict(list)
        self._version = 0

    # ------------------------------------------------------------------
    # Versioning (cache-invalidation hook)
    # ------------------------------------------------------------------

    @property
    def version(self) -> int:
        """Monotonically increasing counter, bumped whenever new
        observations land — the serving layer's plan cache keys on it so
        plans optimized before feedback arrived are never served after."""
        return self._version

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def record(self, observations: Iterable) -> int:
        """Ingest :class:`JoinObservation` records; returns how many."""
        count = 0
        for obs in observations:
            sel = obs.actual_selectivity
            if sel <= 0.0:
                # An empty result still carries information; clamp to a
                # tiny positive value so log-space machinery stays sane.
                sel = 1e-12
            self._history[obs.predicate_label].append(float(min(1.0, sel)))
            count += 1
        if count:
            self._version += 1
        return count

    def n_observations(self, label: str) -> int:
        """Observations recorded for one predicate."""
        return len(self._history.get(label, []))

    def observed_selectivities(self, label: str) -> List[float]:
        """Raw observed selectivities for one predicate."""
        return list(self._history.get(label, []))

    # ------------------------------------------------------------------
    # Producing distributions
    # ------------------------------------------------------------------

    def _prior(self, point: float) -> DiscreteDistribution:
        point = max(point, 1e-12)
        if self.prior_relative_error <= 0 or self.n_buckets == 1:
            return point_mass(min(point, 1.0))
        factor = 1.0 + self.prior_relative_error
        exps = np.linspace(-1.0, 1.0, self.n_buckets)
        vals = np.clip(point * factor**exps, 0.0, 1.0)
        dist = DiscreteDistribution(vals, np.full(self.n_buckets, 1.0 / self.n_buckets))
        scale = point / dist.mean() if dist.mean() > 0 else 1.0
        return dist.scale(scale).clip(0.0, 1.0)

    def distribution(
        self, label: str, point_estimate: float
    ) -> DiscreteDistribution:
        """Learned selectivity distribution for a predicate.

        With no history: the prior around ``point_estimate``.  With
        partial history: an evidence-weighted mixture.  With at least
        ``min_observations``: the empirical distribution alone.
        """
        history = self._history.get(label, [])
        if not history:
            return self._prior(point_estimate)
        empirical = from_samples(history, n_buckets=self.n_buckets)
        if len(history) >= self.min_observations:
            return empirical
        weight = len(history) / self.min_observations
        return empirical.mixture(self._prior(point_estimate), weight)

    def apply_to_query(self, query: "JoinQuery") -> "JoinQuery":
        """Return ``query`` with learned distributions on every predicate.

        Point selectivities move to the learned distribution's mean so
        LSC baselines benefit from the feedback too — the comparison in
        experiment E20 is then purely about carrying the *spread*.
        """
        # Imported here: repro.plans imports repro.catalog (schema), so a
        # module-level import would be circular.
        from ..plans.query import JoinPredicate, JoinQuery

        preds = []
        for p in query.predicates:
            dist = self.distribution(p.label, p.selectivity)
            preds.append(
                JoinPredicate(
                    left=p.left,
                    right=p.right,
                    selectivity=float(min(1.0, dist.mean())),
                    label=p.label,
                    selectivity_dist=dist,
                    result_pages_override=p.result_pages_override,
                    equiv_class=p.equiv_class,
                )
            )
        return JoinQuery(
            list(query.relations),
            preds,
            required_order=query.required_order,
            rows_per_page=query.rows_per_page,
        )
