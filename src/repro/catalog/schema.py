"""Schema objects: tables, columns, indexes, and the catalog that holds them.

The optimizer consumes relations through :class:`TableStats` (sizes in
pages and rows, per-column statistics).  The schema layer is deliberately
small — just enough structure for the System-R substrate to reason about
access paths, join predicates and interesting orders — but it is a real
catalog: the tuple-level execution engine (:mod:`repro.engine`) loads data
into these tables and the statistics module derives histograms from that
data, exactly as a DBMS's ANALYZE would.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

__all__ = ["Column", "Index", "Table", "Catalog", "SchemaError"]


class SchemaError(ValueError):
    """Raised on inconsistent schema definitions or lookups."""


@dataclass(frozen=True)
class Column:
    """A column of a relation.

    Attributes
    ----------
    name:
        Column name, unique within its table.
    dtype:
        Logical type tag; the engine supports ``"int"`` and ``"float"``.
    n_distinct:
        Estimated number of distinct values (used for default join
        selectivities via the classic ``1/max(V(A), V(B))`` rule).
    """

    name: str
    dtype: str = "int"
    n_distinct: Optional[int] = None

    def __post_init__(self) -> None:
        if self.dtype not in ("int", "float"):
            raise SchemaError(f"unsupported column dtype {self.dtype!r}")
        if self.n_distinct is not None and self.n_distinct <= 0:
            raise SchemaError("n_distinct must be positive when given")


@dataclass(frozen=True)
class Index:
    """A secondary index over one column of a table.

    Only what the cost model needs: the indexed column, whether the index
    is clustered (determines whether matching rows are contiguous in the
    base table), and its height in levels (each probed level costs one
    page I/O).
    """

    table: str
    column: str
    clustered: bool = False
    height: int = 2

    def __post_init__(self) -> None:
        if self.height < 1:
            raise SchemaError("index height must be >= 1")


@dataclass
class Table:
    """A base relation.

    Sizes are carried both in *rows* (for selectivity arithmetic) and in
    *pages* (the cost unit of the paper).  ``rows_per_page`` ties the two
    together; the executor uses the same figure when paging real tuples.
    """

    name: str
    columns: List[Column]
    n_rows: int
    rows_per_page: int = 100
    indexes: List[Index] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("table name must be non-empty")
        if self.n_rows < 0:
            raise SchemaError("n_rows must be >= 0")
        if self.rows_per_page <= 0:
            raise SchemaError("rows_per_page must be positive")
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate column names in table {self.name!r}")
        for idx in self.indexes:
            if idx.table != self.name:
                raise SchemaError(
                    f"index on table {idx.table!r} attached to {self.name!r}"
                )
            if idx.column not in names:
                raise SchemaError(
                    f"index column {idx.column!r} not in table {self.name!r}"
                )

    @property
    def n_pages(self) -> int:
        """Size of the relation in pages (at least 1 for non-empty tables)."""
        if self.n_rows == 0:
            return 0
        return max(1, -(-self.n_rows // self.rows_per_page))

    def column(self, name: str) -> Column:
        """Look up a column by name."""
        for col in self.columns:
            if col.name == name:
                return col
        raise SchemaError(f"no column {name!r} in table {self.name!r}")

    def has_column(self, name: str) -> bool:
        """True when the table has a column of that name."""
        return any(c.name == name for c in self.columns)

    def index_on(self, column: str) -> Optional[Index]:
        """Return an index over ``column`` if one exists."""
        for idx in self.indexes:
            if idx.column == column:
                return idx
        return None


class Catalog:
    """A named collection of tables; the optimizer's view of the database."""

    def __init__(self, tables: Iterable[Table] = ()):
        self._tables: Dict[str, Table] = {}
        for t in tables:
            self.add(t)

    def add(self, table: Table) -> None:
        """Register a table; names must be unique."""
        if table.name in self._tables:
            raise SchemaError(f"table {table.name!r} already in catalog")
        self._tables[table.name] = table

    def table(self, name: str) -> Table:
        """Look up a table by name."""
        try:
            return self._tables[name]
        except KeyError:
            raise SchemaError(f"no table {name!r} in catalog") from None

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def __iter__(self):
        return iter(self._tables.values())

    def __len__(self) -> int:
        return len(self._tables)

    def names(self) -> List[str]:
        """Registered table names, in insertion order."""
        return list(self._tables)

    def __repr__(self) -> str:
        return f"Catalog({', '.join(self._tables)})"
