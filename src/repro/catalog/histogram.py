"""Histograms over column values, used for selectivity estimation.

The paper's category-2 parameters ("properties of the query components",
selectivities and result sizes) are classically estimated from histograms
[PHS96].  We implement the two standard one-dimensional kinds:

* :class:`EquiWidthHistogram` — fixed-width value buckets;
* :class:`EquiDepthHistogram` — buckets holding (approximately) equal row
  counts.

Both support range/equality selectivity estimation with the usual
uniform-within-bucket assumption, and both can be *blurred* into a
:class:`~repro.core.distributions.DiscreteDistribution` over selectivity —
the bridge from classical point-estimate statistics to the LEC optimizer's
distributional inputs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..core.distributions import DiscreteDistribution

__all__ = [
    "Histogram",
    "EquiWidthHistogram",
    "EquiDepthHistogram",
    "join_selectivity_from_histograms",
]


@dataclass(frozen=True)
class _Bucket:
    lo: float
    hi: float  # inclusive upper edge for the last bucket, exclusive otherwise
    count: int
    n_distinct: int


class Histogram:
    """Base class: a sequence of value buckets with counts.

    Subclasses differ only in how bucket boundaries are chosen from the
    data; estimation logic is shared.
    """

    def __init__(self, buckets: Sequence[_Bucket], total_rows: int):
        if total_rows < 0:
            raise ValueError("total_rows must be >= 0")
        self._buckets = list(buckets)
        self._total = total_rows

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @staticmethod
    def _bucketize(values: np.ndarray, edges: np.ndarray) -> List[_Bucket]:
        buckets: List[_Bucket] = []
        for i in range(len(edges) - 1):
            lo, hi = float(edges[i]), float(edges[i + 1])
            last = i == len(edges) - 2
            if last:
                mask = (values >= lo) & (values <= hi)
            else:
                mask = (values >= lo) & (values < hi)
            chunk = values[mask]
            buckets.append(
                _Bucket(
                    lo=lo,
                    hi=hi,
                    count=int(chunk.size),
                    n_distinct=int(np.unique(chunk).size) if chunk.size else 0,
                )
            )
        return buckets

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def n_buckets(self) -> int:
        """Number of value buckets."""
        return len(self._buckets)

    @property
    def total_rows(self) -> int:
        """Total row count the histogram was built over."""
        return self._total

    def buckets(self) -> List[Tuple[float, float, int]]:
        """Return ``(lo, hi, count)`` triples for inspection."""
        return [(b.lo, b.hi, b.count) for b in self._buckets]

    @property
    def min_value(self) -> float:
        """Lower edge of the first bucket."""
        return self._buckets[0].lo if self._buckets else math.nan

    @property
    def max_value(self) -> float:
        """Upper edge of the last bucket."""
        return self._buckets[-1].hi if self._buckets else math.nan

    # ------------------------------------------------------------------
    # Selectivity estimation
    # ------------------------------------------------------------------

    def selectivity_eq(self, value: float) -> float:
        """Estimated selectivity of ``col = value``.

        Uniform-within-bucket: the bucket's frequency divided by its
        distinct-value count.
        """
        if self._total == 0:
            return 0.0
        for b in self._buckets:
            inside = (b.lo <= value < b.hi) or (
                b is self._buckets[-1] and value == b.hi
            )
            if inside:
                if b.count == 0 or b.n_distinct == 0:
                    return 0.0
                return (b.count / b.n_distinct) / self._total
        return 0.0

    def selectivity_range(
        self, lo: Optional[float] = None, hi: Optional[float] = None
    ) -> float:
        """Estimated selectivity of ``lo <= col < hi`` (either side open)."""
        if self._total == 0:
            return 0.0
        lo_v = -math.inf if lo is None else lo
        hi_v = math.inf if hi is None else hi
        if hi_v <= lo_v:
            return 0.0
        covered = 0.0
        for b in self._buckets:
            width = b.hi - b.lo
            if width <= 0:
                frac = 1.0 if lo_v <= b.lo < hi_v else 0.0
            else:
                overlap = max(0.0, min(hi_v, b.hi) - max(lo_v, b.lo))
                frac = overlap / width
            covered += frac * b.count
        return min(1.0, covered / self._total)

    def n_distinct(self) -> int:
        """Total distinct-value estimate (sum of per-bucket counts)."""
        return sum(b.n_distinct for b in self._buckets)

    # ------------------------------------------------------------------
    # Bridging to the LEC optimizer
    # ------------------------------------------------------------------

    def selectivity_distribution(
        self,
        kind: str,
        value: Optional[float] = None,
        lo: Optional[float] = None,
        hi: Optional[float] = None,
        relative_error: float = 0.5,
        n_buckets: int = 5,
    ) -> DiscreteDistribution:
        """A *distribution* over the selectivity instead of a point estimate.

        The histogram's point estimate becomes the centre of a discrete
        distribution whose spread models estimation error: support points
        are log-spaced within ``×/÷ (1 + relative_error)`` of the
        estimate, uniformly weighted.  This is how the experiments turn a
        classical catalog into LEC-ready inputs when no better error model
        is available.
        """
        if kind == "eq":
            if value is None:
                raise ValueError("kind='eq' requires value")
            est = self.selectivity_eq(value)
        elif kind == "range":
            est = self.selectivity_range(lo, hi)
        else:
            raise ValueError(f"unknown predicate kind {kind!r}")
        est = max(est, 1e-12)
        if relative_error <= 0 or n_buckets <= 1:
            return DiscreteDistribution([min(est, 1.0)], [1.0])
        factor = 1.0 + relative_error
        exps = np.linspace(-1.0, 1.0, n_buckets)
        vals = np.clip(est * factor**exps, 0.0, 1.0)
        return DiscreteDistribution(vals, np.full(n_buckets, 1.0 / n_buckets))


class EquiWidthHistogram(Histogram):
    """Histogram with equal-width value buckets."""

    @classmethod
    def build(cls, values: Iterable[float], n_buckets: int = 10) -> "EquiWidthHistogram":
        """Construct from raw column values."""
        arr = np.asarray(list(values), dtype=float)
        if n_buckets < 1:
            raise ValueError("n_buckets must be >= 1")
        if arr.size == 0:
            return cls([], 0)
        lo, hi = float(arr.min()), float(arr.max())
        if hi == lo:
            hi = lo + 1.0
        edges = np.linspace(lo, hi, n_buckets + 1)
        return cls(cls._bucketize(arr, edges), int(arr.size))


class EquiDepthHistogram(Histogram):
    """Histogram whose buckets hold (approximately) equal row counts."""

    @classmethod
    def build(cls, values: Iterable[float], n_buckets: int = 10) -> "EquiDepthHistogram":
        """Construct from raw column values."""
        arr = np.asarray(list(values), dtype=float)
        if n_buckets < 1:
            raise ValueError("n_buckets must be >= 1")
        if arr.size == 0:
            return cls([], 0)
        qs = np.linspace(0.0, 1.0, n_buckets + 1)
        edges = np.quantile(arr, qs)
        # Collapse duplicate edges (heavy hitters) while keeping coverage.
        uniq = np.unique(edges)
        if uniq.size < 2:
            uniq = np.array([uniq[0], uniq[0] + 1.0])
        return cls(cls._bucketize(arr, uniq), int(arr.size))


def join_selectivity_from_histograms(
    left: Histogram, right: Histogram
) -> float:
    """Equijoin selectivity estimated from two column histograms.

    The classical bucket-overlap method: for every pair of overlapping
    buckets, rows and distinct values are assumed uniform within each
    bucket; the overlap's matching-tuple count is
    ``rows_l · rows_r / max(d_l, d_r)`` (containment assumption), and the
    selectivity is total matches over the cross-product size.  Strictly
    more informed than the ``1/max(V)`` rule whenever the two columns'
    value ranges only partially align.
    """
    if left.total_rows == 0 or right.total_rows == 0:
        return 0.0
    matches = 0.0
    for lb in left._buckets:
        l_width = max(lb.hi - lb.lo, 0.0)
        for rb in right._buckets:
            lo = max(lb.lo, rb.lo)
            hi = min(lb.hi, rb.hi)
            if hi < lo:
                continue
            if hi == lo and not (
                (lb is left._buckets[-1] or lo < lb.hi)
                and (rb is right._buckets[-1] or lo < rb.hi)
            ):
                continue
            overlap = hi - lo
            l_frac = overlap / l_width if l_width > 0 else 1.0
            r_width = max(rb.hi - rb.lo, 0.0)
            r_frac = overlap / r_width if r_width > 0 else 1.0
            l_rows = lb.count * min(1.0, l_frac)
            r_rows = rb.count * min(1.0, r_frac)
            l_distinct = max(1.0, lb.n_distinct * min(1.0, l_frac))
            r_distinct = max(1.0, rb.n_distinct * min(1.0, r_frac))
            matches += l_rows * r_rows / max(l_distinct, r_distinct)
    denom = float(left.total_rows) * float(right.total_rows)
    return float(min(1.0, matches / denom))
