"""Selectivity estimation by sampling, and its uncertainty quantification.

[SBM93] (cited by the paper as the closest prior work) reduces selectivity
uncertainty by sampling at a cost.  We provide the sampling estimator
itself plus the piece the LEC framework actually needs: a *posterior
distribution* over the true selectivity given a sample, so that sampled
estimates slot into Algorithm D as first-class distributional inputs, with
tighter spreads for larger samples.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..core.distributions import DiscreteDistribution

__all__ = ["SampleEstimate", "estimate_selectivity", "selectivity_posterior"]


@dataclass(frozen=True)
class SampleEstimate:
    """Result of a sampling probe.

    Attributes
    ----------
    n_sampled:
        Number of rows examined.
    n_matched:
        Rows satisfying the predicate.
    cost_pages:
        Page I/Os charged for the probe (sampling is not free — this is
        the cost [SBM93] trades off against plan improvement).
    """

    n_sampled: int
    n_matched: int
    cost_pages: float

    @property
    def point_estimate(self) -> float:
        """The maximum-likelihood selectivity estimate."""
        if self.n_sampled == 0:
            return 0.0
        return self.n_matched / self.n_sampled

    def standard_error(self) -> float:
        """Binomial standard error of the estimate."""
        if self.n_sampled == 0:
            return 0.0
        p = self.point_estimate
        return math.sqrt(max(p * (1.0 - p), 0.0) / self.n_sampled)


def estimate_selectivity(
    values: Sequence[float],
    predicate: Callable[[float], bool],
    sample_size: int,
    rng: np.random.Generator,
    rows_per_page: int = 100,
) -> SampleEstimate:
    """Sample ``sample_size`` rows and count predicate matches.

    The charged cost assumes each sampled row touches a distinct page in
    the worst case, capped at the full relation size.
    """
    if sample_size <= 0:
        raise ValueError("sample_size must be positive")
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        return SampleEstimate(0, 0, 0.0)
    n = min(sample_size, arr.size)
    picks = rng.choice(arr, size=n, replace=False)
    matched = int(sum(1 for v in picks if predicate(float(v))))
    n_pages = max(1, -(-arr.size // rows_per_page))
    cost = float(min(n, n_pages))
    return SampleEstimate(n_sampled=n, n_matched=matched, cost_pages=cost)


def selectivity_posterior(
    estimate: SampleEstimate,
    n_buckets: int = 7,
    prior_alpha: float = 1.0,
    prior_beta: float = 1.0,
) -> DiscreteDistribution:
    """Beta posterior over the true selectivity, discretised into buckets.

    With a Beta(alpha, beta) prior and ``k`` matches out of ``n``, the
    posterior is Beta(alpha + k, beta + n - k).  We discretise it with
    equal-probability buckets whose representatives are the conditional
    means, so the posterior mean is preserved exactly.
    """
    if n_buckets < 1:
        raise ValueError("n_buckets must be >= 1")
    a = prior_alpha + estimate.n_matched
    b = prior_beta + estimate.n_sampled - estimate.n_matched
    if a <= 0 or b <= 0:
        raise ValueError("posterior parameters must be positive")
    mean = a / (a + b)
    if n_buckets == 1:
        return DiscreteDistribution([mean], [1.0])
    # Equal-probability slices via a dense grid of the Beta pdf; no scipy
    # required and accuracy is ample for bucket placement.
    grid = np.linspace(1e-9, 1.0 - 1e-9, 4001)
    log_pdf = (a - 1.0) * np.log(grid) + (b - 1.0) * np.log1p(-grid)
    pdf = np.exp(log_pdf - log_pdf.max())
    cdf = np.cumsum(pdf)
    cdf /= cdf[-1]
    reps = []
    probs = []
    prev_q = 0.0
    prev_idx = 0
    for k in range(1, n_buckets + 1):
        q = k / n_buckets
        idx = int(np.searchsorted(cdf, q, side="left"))
        idx = min(max(idx, prev_idx + 1), grid.size - 1)
        chunk_pdf = pdf[prev_idx : idx + 1]
        chunk_vals = grid[prev_idx : idx + 1]
        mass = float(chunk_pdf.sum())
        if mass > 0:
            reps.append(float(np.dot(chunk_vals, chunk_pdf) / mass))
            probs.append(q - prev_q)
        prev_q = q
        prev_idx = idx
    total = sum(probs)
    probs = [p / total for p in probs]
    dist = DiscreteDistribution(reps, probs)
    # Recenter so the discretised mean matches the analytic posterior mean.
    shift = mean - dist.mean()
    return dist.shift(shift).clip(0.0, 1.0)
