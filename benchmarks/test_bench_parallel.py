"""Parallel-DP benchmarks: multicore bushy search and batched serving.

Two headline claims of the parallel level evaluator:

* on a host with >= 4 CPUs, fanning each DP level's prefetched batch
  across a thread pool makes the bushy search at >= 10 relations at
  least 2x faster than the sequential path — with *bit-identical* plans
  and objectives (the parity suite asserts the same across the whole
  coster matrix; this file re-asserts it on the timed runs so the
  speedup never comes from a different answer);
* coalescing same-shard requests into one ``optimize_batch`` frame and
  running the workers with level batching keeps cluster replay
  throughput at least on par with the request-at-a-time wire path.

The speedup assertion is skipped on hosts with fewer than 4 CPUs, where
it cannot physically hold (``parse_parallelism("auto")`` collapses to
the sequential path on 1 CPU); the snapshot records ``cpu_count`` so the
numbers stay interpretable either way.  Bit-parity is asserted always.

Results land in ``BENCH_parallel.json`` via ``record_snapshot``.  The
committed copy is the regression baseline: the gate compares fresh
dimensionless *ratios* (parallel speedup, batched-vs-plain throughput)
against committed ones and fails on a >25% drop — wall-clock never
gates, so a slower CI machine cannot trip it.  CI's ``bench-parallel``
job runs this file with ``--quick`` and uploads the fresh snapshot.
"""

from __future__ import annotations

import json
import math
import os
import time

import numpy as np
import pytest

from repro.core.context import OptimizationContext
from repro.core.distributions import DiscreteDistribution
from repro.cluster.replay import run_replay
from repro.optimizer.costers import MultiParamCoster
from repro.optimizer.systemr import SystemRDP
from repro.workloads.queries import (
    chain_query,
    with_selectivity_uncertainty,
    with_size_uncertainty,
)

from conftest import record_snapshot

#: gate slack: fail when a fresh ratio drops below committed / this.
_GATE_SLACK = 1.25
#: the acceptance floor for the multicore bushy search.
_MIN_SPEEDUP = 2.0

_BASELINE_PATH = os.path.join(
    os.path.dirname(__file__), "BENCH_parallel.json"
)

MEMORY = DiscreteDistribution(
    [5000.0, 2000.0, 900.0, 300.0], [0.3, 0.4, 0.2, 0.1]
)

#: fresh measurements accumulated across this module's tests, then
#: snapshotted (and gated) at the end.
_RESULTS: dict = {"bushy_dp": {}, "cluster": {}}


def _timeit(fn, repeats: int = 3, loops: int = 1) -> float:
    """Best-of-``repeats`` seconds per call of ``fn``."""
    best = float("inf")
    fn()  # warm context memos and pool spin-up outside the timing
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(loops):
            fn()
        best = min(best, (time.perf_counter() - start) / loops)
    return best


def _bushy_query(n_relations: int):
    rng = np.random.default_rng(13)
    return with_selectivity_uncertainty(
        with_size_uncertainty(chain_query(n_relations, rng), 0.8), 0.8
    )


class TestBushyParallelSpeedup:
    def test_parallel_bushy_dp(self, quick_mode):
        n = 10 if quick_mode else 12
        query = _bushy_query(n)
        cpus = os.cpu_count() or 1

        def run(parallelism):
            engine = SystemRDP(
                MultiParamCoster(MEMORY, fast=True),
                plan_space="bushy",
                context=OptimizationContext(query),
                level_batching=True,
                parallelism=parallelism,
            )
            return engine.optimize(query)

        seq_res = run(None)
        par_res = run("auto")
        # The speedup must never come from a different answer.
        assert par_res.plan.signature() == seq_res.plan.signature()
        assert math.isclose(
            par_res.objective, seq_res.objective, rel_tol=0.0, abs_tol=0.0
        )

        seq_s = _timeit(lambda: run(None))
        par_s = _timeit(lambda: run("auto"))
        speedup = seq_s / par_s
        _RESULTS["bushy_dp"] = {
            "relations": n,
            "cpu_count": cpus,
            "sequential_s": seq_s,
            "parallel_s": par_s,
            "speedup": speedup,
            "speedup_asserted": cpus >= 4,
        }
        print(f"\n[bench-parallel] bushy n={n}: seq {seq_s:.3f}s "
              f"par {par_s:.3f}s speedup {speedup:.2f}x on {cpus} CPUs")

        if cpus >= 4:
            assert speedup >= _MIN_SPEEDUP, (
                f"parallel bushy DP only {speedup:.2f}x the sequential "
                f"path on {cpus} CPUs (floor {_MIN_SPEEDUP}x)"
            )


class TestClusterBatchedServing:
    def test_batched_replay_throughput(self, quick_mode):
        requests = 24 if quick_mode else 48
        common = dict(
            shards=2,
            n_distinct=requests,
            n_requests=requests,
            seed=7,
            concurrency=8,
            min_relations=4,
            max_relations=5,
            schedule="unique",  # every request a fresh optimization
        )
        plain = run_replay(**common)
        batched = run_replay(
            **common, level_batching=True, parallelism="auto", batch_size=4
        )
        for report in (plain, batched):
            assert report["lost"] == 0 and report["errors"] == 0
            assert report["answered"] == report["accepted"]

        ratio = (
            batched["optimize_throughput_qps"]
            / plain["optimize_throughput_qps"]
            if plain["optimize_throughput_qps"] > 0 else 0.0
        )
        _RESULTS["cluster"] = {
            "requests": requests,
            "shards": 2,
            "batch_size": 4,
            "plain_qps": round(plain["optimize_throughput_qps"], 2),
            "batched_qps": round(batched["optimize_throughput_qps"], 2),
            "batched_over_plain": ratio,
        }
        print(f"\n[bench-parallel] cluster replay: plain "
              f"{plain['optimize_throughput_qps']:.1f}/s batched "
              f"{batched['optimize_throughput_qps']:.1f}/s "
              f"(ratio {ratio:.2f}x)")
        # Batching is a transport optimization: it must not cost
        # throughput.  Generous floor absorbs runner noise.
        assert ratio >= 0.5, (
            f"batched replay throughput collapsed to {ratio:.2f}x plain"
        )


class TestRegressionGate:
    def test_snapshot_and_gate(self, quick_mode):
        """Record the snapshot; gate fresh ratios vs the committed ones.

        Runs last in the module (pytest executes in definition order),
        after the timing tests populated ``_RESULTS``.  Workload sizes
        differ between ``--quick`` and full mode, so the snapshot keeps
        one section per mode and the gate only compares like with like.
        Only dimensionless ratios gate — and the bushy speedup only on
        hosts where it was asserted in both runs, since a 1-CPU host's
        ~1.0x is not comparable to a 4-CPU host's 2x+.
        """
        assert _RESULTS["bushy_dp"], "timing tests must run before the gate"
        mode = "quick" if quick_mode else "full"
        committed = {}
        if os.path.exists(_BASELINE_PATH):
            with open(_BASELINE_PATH, encoding="utf-8") as fh:
                committed = json.load(fh)

        payload = {
            "min_speedup": _MIN_SPEEDUP,
            "gate_slack": _GATE_SLACK,
            "modes": dict(committed.get("modes", {})),
        }
        payload["modes"][mode] = dict(_RESULTS)
        record_snapshot("parallel", payload)

        baseline = committed.get("modes", {}).get(mode)
        if baseline is None:
            pytest.skip(f"no committed {mode!r}-mode baseline yet")
        regressions = []

        base_dp = baseline.get("bushy_dp", {})
        fresh_dp = _RESULTS["bushy_dp"]
        if base_dp.get("speedup_asserted") and fresh_dp["speedup_asserted"]:
            floor = base_dp["speedup"] / _GATE_SLACK
            if fresh_dp["speedup"] < floor:
                regressions.append(
                    f"bushy speedup: fresh {fresh_dp['speedup']:.2f}x < "
                    f"floor {floor:.2f}x "
                    f"(committed {base_dp['speedup']:.2f}x)"
                )

        base_cl = baseline.get("cluster", {})
        fresh_cl = _RESULTS["cluster"]
        if base_cl.get("batched_over_plain"):
            floor = base_cl["batched_over_plain"] / _GATE_SLACK
            if fresh_cl["batched_over_plain"] < floor:
                regressions.append(
                    f"batched replay ratio: fresh "
                    f"{fresh_cl['batched_over_plain']:.2f}x < floor "
                    f"{floor:.2f}x "
                    f"(committed {base_cl['batched_over_plain']:.2f}x)"
                )
        assert not regressions, (
            "parallel benchmark regression: " + "; ".join(regressions)
        )
