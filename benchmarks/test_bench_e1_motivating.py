"""E1 — the motivating example (Example 1.1): LSC picks Plan 1, LEC Plan 2."""


def test_e1_motivating(run_quick):
    costs, choosers, monte = run_quick("E1")
    by_plan = {r["plan"]: r for r in costs.rows}
    assert by_plan["Plan 2 (LEC)"]["expected"] < by_plan["Plan 1 (sort-merge)"]["expected"]
    chooser = {r["optimizer"]: r["chooses"] for r in choosers.rows}
    assert "Plan 1" in chooser["LSC @ mean (1740)"]
    assert "Plan 2" in chooser["Algorithm C"]
