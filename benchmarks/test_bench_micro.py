"""Micro-benchmarks for the hot paths of the library.

These time the primitives whose complexity the paper argues about:
single-invocation DP throughput, the b-scaling of Algorithm C, the
linear-time vs naive expected cost, and the distribution kernel ops.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import optimize_algorithm_c, optimize_lsc
from repro.core.distributions import DiscreteDistribution
from repro.core.expected_cost import (
    expected_join_cost_fast,
    expected_join_cost_naive,
)
from repro.costmodel import formulas
from repro.costmodel.model import CostModel
from repro.plans.properties import JoinMethod
from repro.workloads.queries import chain_query


@pytest.fixture(scope="module")
def query6():
    return chain_query(
        6, np.random.default_rng(0), min_pages=500, max_pages=200000,
        require_order=True,
    )


@pytest.fixture(scope="module")
def memory8():
    rng = np.random.default_rng(1)
    vals = np.sort(rng.uniform(50, 5000, 8))
    return DiscreteDistribution(vals, rng.dirichlet(np.ones(8)))


def _dist(seed, b, lo, hi):
    rng = np.random.default_rng(seed)
    return DiscreteDistribution(
        np.sort(rng.uniform(lo, hi, b)), rng.dirichlet(np.ones(b))
    )


class TestOptimizerThroughput:
    def test_lsc_single_invocation(self, benchmark, query6):
        benchmark(lambda: optimize_lsc(query6, 1200.0, cost_model=CostModel(count_evaluations=False)))

    def test_algorithm_c_8_buckets(self, benchmark, query6, memory8):
        benchmark(
            lambda: optimize_algorithm_c(
                query6, memory8, cost_model=CostModel(count_evaluations=False)
            )
        )

    def test_algorithm_c_bushy(self, benchmark, memory8):
        from repro.workloads.queries import clique_query

        q = clique_query(5, np.random.default_rng(3))
        benchmark(
            lambda: optimize_algorithm_c(
                q,
                memory8,
                cost_model=CostModel(count_evaluations=False),
                plan_space="bushy",
            )
        )


class TestExpectedCostKernels:
    @pytest.mark.parametrize("b", [8, 32])
    def test_naive_triple_loop(self, benchmark, b):
        left = _dist(10, b, 100, 1e6)
        right = _dist(11, b, 100, 1e6)
        memory = _dist(12, b, 10, 5000)
        benchmark(
            lambda: expected_join_cost_naive(
                formulas.join_cost, JoinMethod.SORT_MERGE, left, right, memory
            )
        )

    @pytest.mark.parametrize("b", [8, 32])
    def test_fast_linear(self, benchmark, b):
        left = _dist(10, b, 100, 1e6)
        right = _dist(11, b, 100, 1e6)
        memory = _dist(12, b, 10, 5000)
        benchmark(
            lambda: expected_join_cost_fast(
                JoinMethod.SORT_MERGE, left, right, memory
            )
        )


class TestDistributionKernels:
    def test_rebucket(self, benchmark):
        d = _dist(20, 512, 0, 1e6)
        benchmark(lambda: d.rebucket(16))

    def test_independent_product(self, benchmark):
        a = _dist(21, 24, 1, 1e3)
        b = _dist(22, 24, 1, 1e3)
        benchmark(lambda: a.multiply(b))

    def test_expectation_of_step_function(self, benchmark):
        d = _dist(23, 256, 0, 1e6)
        benchmark(lambda: d.expectation(lambda v: 2.0 if v > 5e5 else 6.0))
