"""E2 — LSC/LEC expected-cost ratio grows with environment variability."""


def test_e2_variability(run_quick):
    (table,) = run_quick("E2")
    ratios = {r["cv"]: r["mean_ratio"] for r in table.rows}
    assert ratios[0.0] == 1.0
    assert max(ratios.values()) > 1.05
