"""Serving-layer benchmark: warm-cache throughput, hit rate, degradation.

The headline claims of `repro.serving`:

* a repeated-query workload served from the plan cache is at least 5x
  faster than re-optimizing every request (the acceptance bar; in
  practice the gap is orders of magnitude — a cache hit is one JSON
  deserialization vs a full Algorithm C run);
* the replayed workload's hit rate matches its repetition structure;
* under deadline pressure the degradation ladder answers from the LSC
  rung within budget instead of blowing the deadline at full quality.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.distributions import DiscreteDistribution
from repro.serving.service import (
    RUNG_COARSE,
    RUNG_FULL,
    RUNG_LSC,
    LatencyEstimator,
    OptimizeRequest,
    OptimizerService,
)
from repro.workloads.queries import star_query, with_selectivity_uncertainty


def _workload(n_distinct=4, repeats=10):
    rng = np.random.default_rng(42)
    memory = DiscreteDistribution([400.0, 1500.0, 4000.0], [0.25, 0.5, 0.25])
    queries = [
        with_selectivity_uncertainty(
            star_query(4, rng, min_pages=500, max_pages=200000), 1.0, n_buckets=4
        )
        for _ in range(n_distinct)
    ]
    requests = [
        OptimizeRequest(query=q, objective="lec", memory=memory)
        for _ in range(repeats)
        for q in queries
    ]
    return queries, memory, requests


def test_warm_cache_at_least_5x_faster_on_repeated_workload():
    queries, memory, requests = _workload()

    with OptimizerService(max_workers=1) as svc:
        # Cold: every distinct query optimized once.
        t0 = time.perf_counter()
        for q in queries:
            svc.optimize(q, "lec", memory=memory)
        cold_s = time.perf_counter() - t0
        cold_per_q = cold_s / len(queries)

        # Warm: the full repeated workload, all cache hits.
        t0 = time.perf_counter()
        results = svc.optimize_batch(requests)
        warm_s = time.perf_counter() - t0
        warm_per_q = warm_s / len(requests)

    assert all(r.cache_hit for r in results)
    speedup = cold_per_q / warm_per_q
    print(
        f"\ncold {cold_per_q * 1e3:.2f} ms/q, warm {warm_per_q * 1e3:.3f} ms/q "
        f"({speedup:.0f}x); cache stats: {svc.cache.stats()}"
    )
    assert speedup >= 5.0, f"warm serving only {speedup:.1f}x faster"


def test_hit_rate_matches_workload_repetition():
    queries, memory, requests = _workload(n_distinct=5, repeats=8)
    with OptimizerService(max_workers=2) as svc:
        svc.optimize_batch(requests)
        stats = svc.cache.stats()
    # 5 distinct queries, 40 requests: >= 35 hits no matter how the pool
    # interleaved the first arrivals (racing duplicates may both miss).
    assert stats["misses"] <= 2 * len(queries)
    assert stats["hit_rate"] >= 0.8
    snap = svc.metrics_snapshot()
    assert snap["derived"]["plan_cache.hit_rate"] == pytest.approx(
        stats["hit_rate"]
    )


def test_degradation_under_deadline_pressure_stays_within_budget():
    queries, memory, _ = _workload(n_distinct=2, repeats=1)
    est = LatencyEstimator()
    for n_rels in (3, 4, 5):
        est.record(RUNG_FULL, "expected", n_rels, 60.0)
        est.record(RUNG_COARSE, "expected", n_rels, 60.0)
    deadline = 10.0  # generous wall-clock; tiny vs the 60s estimates
    with OptimizerService(estimator=est, cache=False) as svc:
        t0 = time.perf_counter()
        results = [
            svc.optimize(q, "lec", memory=memory, deadline=deadline)
            for q in queries
        ]
        elapsed = time.perf_counter() - t0
        snap = svc.metrics_snapshot()
    assert all(r.rung == RUNG_LSC for r in results)
    assert all(r.latency <= deadline for r in results)
    assert not any(r.deadline_exceeded for r in results)
    assert snap["counters"]["serving.rung.lsc"] == len(results)
    assert snap["counters"]["serving.degraded"] == len(results)
    print(
        f"\n{len(results)} deadline-pressured requests answered from the "
        f"LSC rung in {elapsed * 1e3:.1f} ms total"
    )


def test_bench_cold_serving(benchmark):
    """Baseline: the repeated workload with the cache disabled."""
    _, memory, requests = _workload(n_distinct=2, repeats=3)

    def run():
        with OptimizerService(max_workers=1, cache=False) as svc:
            return svc.optimize_batch(requests)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    assert not any(r.cache_hit for r in results)


def test_bench_warm_serving(benchmark):
    """The same workload against a pre-warmed plan cache."""
    queries, memory, requests = _workload(n_distinct=2, repeats=3)
    svc = OptimizerService(max_workers=1)
    try:
        for q in queries:
            svc.optimize(q, "lec", memory=memory)
        results = benchmark.pedantic(
            lambda: svc.optimize_batch(requests), rounds=1, iterations=1
        )
        assert all(r.cache_hit for r in results)
    finally:
        svc.close()
