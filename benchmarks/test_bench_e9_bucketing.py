"""E9 — level-set bucketing reaches zero regret with few buckets."""


def test_e9_bucketing(run_quick):
    (table,) = run_quick("E9")
    level_set = [r for r in table.rows if r["strategy"] == "level-set"]
    assert any(abs(r["regret_pct"]) < 1e-6 for r in level_set)
