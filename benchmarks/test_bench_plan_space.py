"""Plan-space benchmark: what bushy enumeration costs and what it buys.

Runs the exact-LEC DP (Algorithm C) over the E3 workload in each plan
space and snapshots per-space enumeration effort (wall time, subsets,
formula evaluations, Chen & Schneider prunes) plus the plan-quality
delta relative to left-deep.  The numbers land in
``benchmarks/BENCH_plan_space.json`` (written by the conftest session
hook; uploaded as a CI artifact) so space-enumeration regressions are
diffable across commits.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core import optimize_algorithm_c
from repro.core.distributions import DiscreteDistribution
from repro.optimizer.facade import clear_context_cache
from repro.costmodel import CostModel
from repro.workloads.queries import random_query

from conftest import record_snapshot

SPACES = ["left-deep", "zig-zag", "bushy"]


def _e3_workload(n_queries: int):
    rng = np.random.default_rng(0)
    return [
        random_query(
            4 + (i % 2), rng, min_pages=300, max_pages=300000,
            rows_per_page=100,
        )
        for i in range(n_queries)
    ]


def test_plan_space_enumeration_snapshot(benchmark):
    memory = DiscreteDistribution(
        [200.0, 600.0, 1200.0, 2500.0, 6000.0], [0.15, 0.25, 0.25, 0.2, 0.15]
    )
    queries = _e3_workload(8)

    def measure():
        results = {}
        for space in SPACES:
            elapsed = 0.0
            cost_sum = 0.0
            subsets = evals = pruned = 0
            per_query = []
            for query in queries:
                clear_context_cache()
                cm = CostModel()
                start = time.perf_counter()
                res = optimize_algorithm_c(
                    query, memory, cost_model=cm, plan_space=space
                )
                elapsed += time.perf_counter() - start
                per_query.append(res.objective)
                cost_sum += res.objective
                subsets += res.stats.subsets_explored
                evals += res.stats.formula_evaluations
                pruned += res.stats.partitions_pruned
            results[space] = {
                "mean_optimize_seconds": elapsed / len(queries),
                "mean_expected_cost": cost_sum / len(queries),
                "expected_costs": per_query,
                "subsets_explored": subsets,
                "formula_evaluations": evals,
                "partitions_pruned": pruned,
            }
        return results

    results = benchmark.pedantic(measure, rounds=1, iterations=1)

    # Richer spaces may only improve the optimum, and the exact DP must
    # realize that improvement (or tie) on every query.
    for space in SPACES:
        for bushy_cost, ld_cost in zip(
            results[space]["expected_costs"],
            results["left-deep"]["expected_costs"],
        ):
            assert bushy_cost <= ld_cost * (1 + 1e-9)

    for space in SPACES:
        gains = [
            100.0 * (1.0 - c / ld)
            for c, ld in zip(
                results[space]["expected_costs"],
                results["left-deep"]["expected_costs"],
            )
        ]
        results[space]["mean_gain_over_left_deep_pct"] = float(np.mean(gains))
        results[space]["slowdown_vs_left_deep"] = (
            results[space]["mean_optimize_seconds"]
            / results["left-deep"]["mean_optimize_seconds"]
        )
        print(
            f"{space:>10}: {results[space]['mean_optimize_seconds'] * 1e3:.1f} ms/query, "
            f"gain {results[space]['mean_gain_over_left_deep_pct']:.3f}%, "
            f"{results[space]['partitions_pruned']} partitions pruned"
        )

    record_snapshot(
        "plan_space",
        {
            "workload": "E3 (8 random 4-5 relation queries, b=5 memory buckets)",
            "algorithm": "Algorithm C (exact LEC DP)",
            "n_queries": len(queries),
            "spaces": results,
        },
    )
