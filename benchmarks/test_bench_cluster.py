"""Cluster-tier benchmark: optimize throughput vs shard count + crash drill.

The headline claims of ``repro.cluster``:

* on a CPU-bound, mostly-unique workload, 4 worker processes deliver at
  least 2x the optimize throughput of 1 (the DP runs escape the GIL);
  CI asserts >= 1.5x to absorb runner noise, and the assertion is
  skipped on hosts with fewer than 4 CPUs, where the speedup cannot
  physically exist — the snapshot records ``cpu_count`` so the numbers
  are interpretable either way;
* killing a worker mid-replay loses no accepted request: the gateway
  respawns the worker, re-warms its hot cache from the shared tier and
  replays the in-flight work.

Results land in ``BENCH_serving_cluster.json`` via ``record_snapshot``:
throughput, p50/p99 latency and the rung distribution per shard count.
"""

from __future__ import annotations

import os

from repro.cluster.replay import run_replay

from conftest import record_snapshot

#: Shard counts whose replays are snapshotted (1 is the GIL baseline).
_SHARD_COUNTS = (1, 4)

#: Mostly-unique workload: every request a distinct query, so throughput
#: measures optimization work, not cache luck.
_REQUESTS = 48

_SPEEDUP_FLOOR = 1.5


def _summarize(report: dict) -> dict:
    latency = report["latency"]
    return {
        "throughput_qps": round(report["throughput_qps"], 2),
        "optimize_throughput_qps": round(
            report["optimize_throughput_qps"], 2
        ),
        "wall_seconds": round(report["wall_seconds"], 4),
        "p50_ms": round(latency.get("p50", 0.0) * 1e3, 2),
        "p99_ms": round(latency.get("p99", 0.0) * 1e3, 2),
        "rungs": report["rungs"],
        "cache_tiers": {
            k: (round(v, 4) if isinstance(v, float) else v)
            for k, v in report["cache_tiers"].items()
        },
        "accepted": report["accepted"],
        "answered": report["answered"],
        "errors": report["errors"],
        "shed": report["shed"],
        "lost": report["lost"],
        "restarts": report["restarts"],
    }


def test_optimize_throughput_scales_with_shards():
    reports = {}
    for shards in _SHARD_COUNTS:
        report = run_replay(
            shards=shards,
            n_distinct=_REQUESTS,
            n_requests=_REQUESTS,
            seed=7,
            concurrency=8,
            min_relations=4,
            max_relations=5,
            schedule="unique",  # every request a fresh optimization
        )
        assert report["lost"] == 0 and report["errors"] == 0
        reports[shards] = report

    base = reports[_SHARD_COUNTS[0]]["optimize_throughput_qps"]
    wide = reports[_SHARD_COUNTS[-1]]["optimize_throughput_qps"]
    speedup = wide / base if base > 0 else 0.0
    cpus = os.cpu_count() or 1

    record_snapshot("serving_cluster", {
        "workload": {
            "requests": _REQUESTS,
            "distinct": _REQUESTS,
            "schedule": "unique",
            "relations": [4, 5],
            "seed": 7,
            "concurrency": 8,
        },
        "cpu_count": cpus,
        "by_shards": {str(s): _summarize(r) for s, r in reports.items()},
        "speedup_4v1": round(speedup, 3),
        "speedup_asserted": cpus >= 4,
    })

    print(f"\noptimize throughput: 1 shard {base:.1f}/s, "
          f"{_SHARD_COUNTS[-1]} shards {wide:.1f}/s "
          f"(speedup {speedup:.2f}x on {cpus} CPUs)")

    if cpus >= 4:
        assert speedup >= _SPEEDUP_FLOOR, (
            f"4-shard optimize throughput only {speedup:.2f}x the 1-shard "
            f"baseline on {cpus} CPUs (floor {_SPEEDUP_FLOOR}x)"
        )


def test_worker_kill_loses_no_accepted_request():
    report = run_replay(
        shards=2,
        n_distinct=16,
        n_requests=32,
        seed=11,
        concurrency=8,
        min_relations=3,
        max_relations=4,
        kill_worker_at=12,
    )
    assert report["restarts"] >= 1, "the drill must actually kill a worker"
    assert report["lost"] == 0
    assert report["errors"] == 0
    assert report["answered"] + report["shed"] == report["accepted"] + report["shed"]
    assert report["answered"] == report["accepted"]
