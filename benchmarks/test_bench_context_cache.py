"""Context-cache micro-benchmark: warm vs cold multi-parameter runs.

The headline claim of the OptimizationContext layer: re-optimizing a
query whose context is already warm (sizes, size distributions, survival
tables and step costs memoized) is at least 2x faster than a cold run —
with bit-identical plans and costs.  Algorithm D is the stress case: it
folds page-count distributions per subset and takes full distributional
expectations per join step, all of which the context absorbs.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.algorithm_d import optimize_algorithm_d
from repro.core.context import OptimizationContext
from repro.core.distributions import DiscreteDistribution
from repro.costmodel.model import CostModel
from repro.workloads.queries import star_query, with_selectivity_uncertainty


def _setup():
    rng = np.random.default_rng(99)
    base = star_query(5, rng, min_pages=500, max_pages=200000, require_order=True)
    query = with_selectivity_uncertainty(base, 2.0, n_buckets=5)
    memory = DiscreteDistribution(
        [400.0, 1500.0, 4000.0], [0.25, 0.5, 0.25]
    )
    return query, memory


def _run(query, memory, context):
    return optimize_algorithm_d(
        query,
        memory,
        cost_model=CostModel(count_evaluations=False),
        max_buckets=12,
        context=context,
    )


def test_warm_context_at_least_2x_faster_with_identical_result():
    query, memory = _setup()

    t0 = time.perf_counter()
    cold_ctx = OptimizationContext(query)
    cold = _run(query, memory, cold_ctx)
    cold_s = time.perf_counter() - t0

    # Same context again: every size distribution and step cost is a hit.
    t0 = time.perf_counter()
    warm = _run(query, memory, cold_ctx)
    warm_s = time.perf_counter() - t0

    assert warm.plan.signature() == cold.plan.signature()
    assert abs(warm.objective - cold.objective) < 1e-9
    assert cold_ctx.total_hits() > 0
    speedup = cold_s / warm_s
    print(
        f"\ncold {cold_s * 1e3:.1f} ms, warm {warm_s * 1e3:.1f} ms "
        f"({speedup:.1f}x); cache stats: {cold_ctx.stats()}"
    )
    assert speedup >= 2.0, f"warm run only {speedup:.2f}x faster"


def test_bench_cold_multiparam(benchmark):
    """Baseline: Algorithm D with a fresh context every round."""
    query, memory = _setup()
    result = benchmark.pedantic(
        lambda: _run(query, memory, OptimizationContext(query)),
        rounds=3,
        iterations=1,
    )
    assert result.plan is not None


def test_bench_warm_multiparam(benchmark):
    """Algorithm D against a pre-warmed shared context."""
    query, memory = _setup()
    ctx = OptimizationContext(query)
    cold = _run(query, memory, ctx)  # warm it up
    result = benchmark.pedantic(
        lambda: _run(query, memory, ctx),
        rounds=3,
        iterations=1,
    )
    assert result.plan.signature() == cold.plan.signature()
    assert abs(result.objective - cold.objective) < 1e-9
