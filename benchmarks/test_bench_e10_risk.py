"""E10 — LEC==LSC in the flat regime; risk objectives diverge otherwise."""


def test_e10_risk(run_quick):
    coincide, profile = run_quick("E10")
    assert all(r["same_as_lec"] for r in coincide.rows)
    chosen = {r["objective"]: r["plan"] for r in profile.rows}
    assert chosen["ExpectedCost"] != chosen["WorstCase"]
