"""Shared helpers for the benchmark harness.

Each experiment benchmark runs the corresponding E* module (quick mode)
exactly once under pytest-benchmark timing and prints its tables, so
``pytest benchmarks/ --benchmark-only -s`` regenerates every "table and
figure" of the reproduction in one command.
"""

from __future__ import annotations

import pytest

from repro.experiments.harness import run_experiment


@pytest.fixture
def run_quick(benchmark):
    """Benchmark one experiment (single round) and return its tables."""

    def _run(exp_id: str):
        tables = benchmark.pedantic(
            run_experiment,
            args=(exp_id,),
            kwargs={"quick": True, "seed": 0},
            rounds=1,
            iterations=1,
        )
        for table in tables:
            print()
            print(table)
        return tables

    return _run
