"""Shared helpers for the benchmark harness.

Each experiment benchmark runs the corresponding E* module (quick mode)
exactly once under pytest-benchmark timing and prints its tables, so
``pytest benchmarks/ --benchmark-only -s`` regenerates every "table and
figure" of the reproduction in one command.

Benchmarks can also publish machine-readable snapshots: anything passed
to :func:`record_snapshot` is written to ``benchmarks/BENCH_<name>.json``
at session end (CI uploads these as artifacts, so plan-space cost/quality
numbers are diffable across commits).
"""

from __future__ import annotations

import json
import os
from typing import Dict

import pytest

from repro.experiments.harness import run_experiment

#: snapshot name -> JSON-ready payload, flushed in pytest_sessionfinish.
_SNAPSHOTS: Dict[str, dict] = {}


def pytest_addoption(parser):
    parser.addoption(
        "--quick",
        action="store_true",
        default=False,
        help="shrink benchmark workloads (CI's bench-kernel job); "
        "speedup gates still apply, wall-clock shrinks",
    )


@pytest.fixture(scope="session")
def quick_mode(request) -> bool:
    """True when the session runs with ``--quick``."""
    return bool(request.config.getoption("--quick"))


def record_snapshot(name: str, payload: dict) -> None:
    """Register a payload to be written to ``BENCH_<name>.json``."""
    _SNAPSHOTS[name] = payload


def pytest_sessionfinish(session, exitstatus):
    here = os.path.dirname(__file__)
    for name, payload in _SNAPSHOTS.items():
        path = os.path.join(here, f"BENCH_{name}.json")
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")


@pytest.fixture
def run_quick(benchmark):
    """Benchmark one experiment (single round) and return its tables."""

    def _run(exp_id: str):
        tables = benchmark.pedantic(
            run_experiment,
            args=(exp_id,),
            kwargs={"quick": True, "seed": 0},
            rounds=1,
            iterations=1,
        )
        for table in tables:
            print()
            print(table)
        return tables

    return _run
