"""E19 — randomized LEC search: near-optimal where the DP can check it."""

import math


def test_e19_randomized(run_quick):
    (table,) = run_quick("E19")
    checked = [r for r in table.rows if not math.isnan(r["mean_regret_pct"])]
    assert checked
    for row in checked:
        assert row["mean_regret_pct"] < 30.0
    sa = [r for r in checked if r["algorithm"] == "simulated annealing"]
    assert all(r["frac_optimal"] >= 0.5 for r in sa)
