"""E12 — Monte-Carlo: the LEC plan has the lowest realized mean cost."""


def test_e12_montecarlo(run_quick):
    (table,) = run_quick("E12")
    means = {r["optimizer"]: r["mean"] for r in table.rows}
    assert means["Algorithm C"] <= min(means.values()) + 1e-6
