"""E6 — Algorithm D under widening selectivity uncertainty."""


def test_e6_multiparam(run_quick):
    (table,) = run_quick("E6")
    for row in table.rows:
        assert row["lsc_vs_D"] >= 1.0 - 1e-9
