"""E5 — dynamic (Markov) memory: phase-aware LEC is exact and dominant."""


def test_e5_dynamic(run_quick):
    (table,) = run_quick("E5")
    for row in table.rows:
        assert row["marginal_eq_bruteforce"] is True
        assert row["mean_lsc_vs_dyn"] >= 1.0 - 1e-9
        assert row["mean_static_vs_dyn"] >= 1.0 - 1e-9
