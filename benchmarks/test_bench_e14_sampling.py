"""E14 — EVSI of sampling: worthless for narrow priors, valuable for wide."""


def test_e14_sampling(run_quick):
    (table,) = run_quick("E14")
    spreads = sorted({r["prior_spread"] for r in table.rows})
    wide = [r for r in table.rows if r["prior_spread"] == spreads[-1]]
    assert any(r["evsi"] > 0 for r in wide)
