"""E8 — Proposition 3.1: top-c merges within the c + c ln c probe bound."""


def test_e8_topc(run_quick):
    (table,) = run_quick("E8")
    for row in table.rows:
        assert row["correct"] is True
        assert row["max_probes"] <= row["bound_c_clnc"] + 1e-9
