"""E13 — strategy taxonomy: cost/effort/plan-size trade-offs."""


def test_e13_strategies(run_quick):
    (table,) = run_quick("E13")
    cost = {r["strategy"]: r["E_cost"] for r in table.rows}
    assert cost["LEC Algorithm C (compile-time)"] <= cost["LSC @ mean (compile-time)"]
