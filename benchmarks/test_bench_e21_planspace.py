"""E21 — the LEC ladder holds in every plan space; bushy never hurts."""


def test_e21_planspace(run_quick):
    ladder, dividend = run_quick("E21")

    exact = [r for r in ladder.rows if r["algorithm"] == "Algorithm C"]
    assert len(exact) == 3  # one per space
    for row in exact:
        assert row["mean_regret_pct"] == 0.0
        assert row["frac_optimal"] == 1.0

    lsc = [r for r in ladder.rows if r["algorithm"] == "LSC @ mean"]
    assert any(r["mean_regret_pct"] > 0.0 for r in lsc)

    by_space = {r["plan_space"]: r for r in dividend.rows}
    assert by_space["left-deep"]["mean_gain_over_left_deep_pct"] == 0.0
    # Dominance: richer spaces can only gain (up to float noise).
    assert by_space["bushy"]["mean_gain_over_left_deep_pct"] >= -1e-9
    assert by_space["zig-zag"]["mean_gain_over_left_deep_pct"] >= -1e-9
