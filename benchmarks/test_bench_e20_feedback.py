"""E20 — cardinality feedback: estimate error and regret converge."""


def test_e20_feedback(run_quick):
    (table,) = run_quick("E20")
    rows = sorted(table.rows, key=lambda r: r["batch"])
    assert rows[0]["est_error_x"] > rows[-1]["est_error_x"]
    assert rows[-1]["regret_vs_oracle"] <= rows[0]["regret_vs_oracle"]
    assert rows[-1]["regret_vs_oracle"] <= 1.0 + 1e-9
