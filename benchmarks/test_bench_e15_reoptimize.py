"""E15 — mid-execution re-optimization vs compile-time Algorithm D."""


def test_e15_reoptimize(run_quick):
    (table,) = run_quick("E15")
    for row in table.rows:
        assert row["adaptive_vs_D"] <= row["static_vs_D"] * 1.05 + 1e-9
