"""E17 — pipelining ablation: feature vs awareness value."""


def test_e17_pipelining(run_quick):
    (table,) = run_quick("E17")
    for row in table.rows:
        assert row["feature_saving_pct"] >= 0.0
        assert row["awareness_saving_pct"] >= -1e-9
