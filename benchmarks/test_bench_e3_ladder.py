"""E3 — the A/B/C quality ladder vs the exhaustive LEC optimum."""


def test_e3_ladder(run_quick):
    (table,) = run_quick("E3")
    regret = {r["algorithm"]: r["mean_regret_pct"] for r in table.rows}
    assert regret["Algorithm C"] == 0.0
    assert regret["LSC @ mean"] >= regret["Algorithm A"]
