"""E18 — robustness to distribution misspecification."""


def test_e18_misspecification(run_quick):
    (table,) = run_quick("E18")
    exact = [r for r in table.rows if r["factor"] == 1.0]
    assert all(abs(r["lec_misspec_regret_pct"]) < 1e-6 for r in exact)
    assert all(r["lec_still_beats_lsc"] >= 0.5 for r in table.rows)
