"""E7 — linear-time expected join costs equal the naive triple loop."""


def test_e7_fastcost(run_quick):
    (table,) = run_quick("E7")
    assert all(r["max_rel_diff"] < 1e-9 for r in table.rows)
