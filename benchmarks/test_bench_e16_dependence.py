"""E16 — dependent parameters: independence leaves cost on the table."""


def test_e16_dependence(run_quick):
    (table,) = run_quick("E16")
    rows = sorted(table.rows, key=lambda r: r["coupling"])
    assert abs(rows[0]["indep_vs_dep"] - 1.0) < 1e-9
    assert rows[-1]["indep_vs_dep"] > 1.0
    for row in rows:
        assert row["E_observe_load"] <= row["E_dependent"] + 1e-9
