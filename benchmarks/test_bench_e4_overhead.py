"""E4 — LEC optimization effort is b x one LSC invocation."""


def test_e4_overhead(run_quick):
    (table,) = run_quick("E4")
    for row in table.rows:
        assert abs(row["evals_ratio_vs_lsc"] - row["b"]) < 0.01 * row["b"]
