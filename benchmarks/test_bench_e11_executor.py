"""E11 — measured executor I/O steps down across the model's breakpoints."""


def test_e11_executor(run_quick):
    (table,) = run_quick("E11")
    sm = sorted(
        (r for r in table.rows if r["method"] == "SM"), key=lambda r: r["memory"]
    )
    assert sm[0]["measured_io"] > sm[-1]["measured_io"]
