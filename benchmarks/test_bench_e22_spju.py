"""E22 — SPJU blocks: Algorithm C exact; C10 coincidence transfers."""


def test_e22_spju(run_quick):
    ladder, coincidence = run_quick("E22")

    by_algo = {r["algorithm"]: r for r in ladder.rows}
    assert by_algo["Algorithm C"]["mean_regret_pct"] == 0.0
    assert by_algo["Algorithm C"]["frac_optimal"] == 1.0

    by_regime = {r["regime"]: r for r in coincidence.rows}
    narrow = by_regime["linear (narrow)"]
    assert narrow["frac_coincide"] == 1.0
    assert abs(narrow["mean_lsc_excess_pct"]) < 1e-6
    straddling = by_regime["straddling"]
    assert straddling["frac_coincide"] < 1.0
    assert straddling["max_lsc_excess_pct"] > 0.0
