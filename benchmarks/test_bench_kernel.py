"""Distribution-kernel micro benchmarks and the regression gate.

Times the vectorized kernel against the pure-python reference
implementations in ``tests/core/reference_kernel.py`` (the behavioral
spec the differential oracle suite checks against) and asserts the
speedups the vectorization was built for:

* convolution / product / rebucket micro-ops — ≥5x over the reference;
* batched expected join cost — ≥5x over the reference triple loop;
* Algorithm D end-to-end, cold and warm context — recorded for tracking.

Results land in ``BENCH_kernel.json`` via :func:`record_snapshot`.  The
committed copy of that file is the regression baseline: the gate test
compares freshly measured speedup *ratios* (not wall-clock, which varies
across machines) against the committed ones and fails on a >25% drop.
CI's ``bench-kernel`` job runs this file with ``--quick`` and uploads
the fresh snapshot as an artifact.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from repro.core.algorithm_d import optimize_algorithm_d
from repro.core.context import OptimizationContext
from repro.core.distributions import DiscreteDistribution
from repro.core.expected_cost import FAST_METHODS, expected_join_costs_batched
from repro.costmodel.model import CostModel
from repro.workloads.queries import (
    chain_query,
    with_selectivity_uncertainty,
    with_size_uncertainty,
)
from tests.core import reference_kernel as ref

from conftest import record_snapshot

#: gate slack: fail when a fresh speedup drops below committed / this.
_GATE_SLACK = 1.25
#: the vectorization target from the kernel issue.
_MIN_SPEEDUP = 5.0

_BASELINE_PATH = os.path.join(os.path.dirname(__file__), "BENCH_kernel.json")

MEMORY = DiscreteDistribution(
    [5000.0, 2000.0, 900.0, 300.0], [0.3, 0.4, 0.2, 0.1]
)

#: fresh measurements accumulated across the tests in this module, then
#: snapshotted (and gated) at the end.
_RESULTS: dict = {"micro": {}, "algorithm_d": {}}


def _timeit(fn, repeats: int = 5, loops: int = 3) -> float:
    """Best-of-``repeats`` seconds per call of ``fn`` (median-free min)."""
    best = float("inf")
    fn()  # warm caches, JIT-free but first-call allocations happen here
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(loops):
            fn()
        best = min(best, (time.perf_counter() - start) / loops)
    return best


def _random_support(rng: np.random.Generator, n: int):
    values = np.sort(rng.uniform(1.0, 1e6, size=n))
    probs = rng.uniform(0.1, 1.0, size=n)
    probs = probs / probs.sum()
    return values.tolist(), probs.tolist()


def _record_micro(name: str, ref_s: float, vec_s: float) -> float:
    speedup = ref_s / vec_s
    _RESULTS["micro"][name] = {
        "ref_ms": ref_s * 1e3,
        "vec_ms": vec_s * 1e3,
        "speedup": speedup,
    }
    print(f"\n[bench-kernel] {name}: ref {ref_s * 1e3:.3f}ms "
          f"vec {vec_s * 1e3:.3f}ms speedup {speedup:.1f}x")
    return speedup


class TestMicroOps:
    @pytest.mark.parametrize("op", ["convolve", "multiply"])
    def test_pairwise_op_speedup(self, quick_mode, op):
        n = 48 if quick_mode else 96
        rng = np.random.default_rng(3)
        sa, sb = _random_support(rng, n), _random_support(rng, n)
        da = DiscreteDistribution(*sa)
        db = DiscreteDistribution(*sb)
        ref_fn = getattr(ref, op)
        ref_s = _timeit(lambda: ref_fn(sa, sb))
        vec_s = _timeit(lambda: getattr(da, op)(db))
        assert _record_micro(op, ref_s, vec_s) >= _MIN_SPEEDUP

    def test_rebucket_speedup(self, quick_mode):
        n = 4096 if quick_mode else 8192
        rng = np.random.default_rng(4)
        support = _random_support(rng, n)
        dist = DiscreteDistribution(*support)
        ref_s = _timeit(lambda: ref.rebucket(*support, 16))
        vec_s = _timeit(lambda: dist.rebucket(16))
        assert _record_micro("rebucket", ref_s, vec_s) >= _MIN_SPEEDUP

    def test_batched_expected_cost_speedup(self, quick_mode):
        n_pairs = 12 if quick_mode else 32
        b = 12 if quick_mode else 16
        rng = np.random.default_rng(5)
        cm = CostModel(count_evaluations=False)
        methods = sorted(FAST_METHODS, key=lambda m: m.value)
        supports = [
            (_random_support(rng, b), _random_support(rng, b))
            for _ in range(n_pairs)
        ]
        requests = [
            (methods[i % len(methods)],
             DiscreteDistribution(*sl), DiscreteDistribution(*sr))
            for i, (sl, sr) in enumerate(supports)
        ]
        mem_support = (MEMORY.values.tolist(), MEMORY.probs.tolist())

        def reference_all():
            return [
                ref.expected_join_cost(
                    lambda l, r, m, _mth=methods[i % len(methods)]:
                        cm.join_cost(_mth, l, r, m),
                    sl, sr, mem_support,
                )
                for i, (sl, sr) in enumerate(supports)
            ]

        ref_s = _timeit(reference_all, loops=1)
        vec_s = _timeit(lambda: expected_join_costs_batched(requests, MEMORY))
        assert _record_micro("batched_expected_cost", ref_s, vec_s) \
            >= _MIN_SPEEDUP


class TestAlgorithmDEndToEnd:
    def test_cold_and_warm(self, quick_mode):
        n = 4 if quick_mode else 5
        rng = np.random.default_rng(6)
        query = with_selectivity_uncertainty(
            with_size_uncertainty(chain_query(n, rng), 0.8), 0.8
        )

        start = time.perf_counter()
        context = OptimizationContext(query)
        cold_res = optimize_algorithm_d(
            query, MEMORY, fast=True, context=context
        )
        cold_s = time.perf_counter() - start

        start = time.perf_counter()
        warm_res = optimize_algorithm_d(
            query, MEMORY, fast=True, context=context
        )
        warm_s = time.perf_counter() - start

        assert warm_res.plan.signature() == cold_res.plan.signature()
        _RESULTS["algorithm_d"] = {
            "relations": n,
            "cold_s": cold_s,
            "warm_s": warm_s,
        }
        print(f"\n[bench-kernel] algorithm-d n={n}: "
              f"cold {cold_s:.3f}s warm {warm_s:.3f}s")


class TestRegressionGate:
    def test_snapshot_and_gate(self, quick_mode):
        """Record the snapshot; gate fresh speedups vs the committed one.

        Runs last in the module (pytest executes in definition order),
        after the micro tests populated ``_RESULTS``.  Workload sizes —
        and with them the attainable speedups — differ between ``--quick``
        and full mode, so the snapshot keeps one section per mode and the
        gate only compares like with like.  It compares dimensionless
        speedup ratios, not wall-clock, so a slower CI machine does not
        trip it — only a genuinely regressed kernel does.
        """
        assert _RESULTS["micro"], "micro benchmarks must run before the gate"
        mode = "quick" if quick_mode else "full"
        committed = {}
        if os.path.exists(_BASELINE_PATH):
            with open(_BASELINE_PATH, encoding="utf-8") as fh:
                committed = json.load(fh)

        payload = {
            "min_speedup": _MIN_SPEEDUP,
            "gate_slack": _GATE_SLACK,
            "modes": dict(committed.get("modes", {})),
        }
        payload["modes"][mode] = dict(_RESULTS)
        record_snapshot("kernel", payload)

        baseline = committed.get("modes", {}).get(mode)
        if baseline is None:
            pytest.skip(f"no committed {mode!r}-mode baseline yet")
        regressions = []
        for name, fresh in _RESULTS["micro"].items():
            base = baseline.get("micro", {}).get(name)
            if base is None:
                continue
            floor = base["speedup"] / _GATE_SLACK
            if fresh["speedup"] < floor:
                regressions.append(
                    f"{name}: fresh {fresh['speedup']:.1f}x < "
                    f"floor {floor:.1f}x (committed {base['speedup']:.1f}x)"
                )
        assert not regressions, "kernel speedup regression: " + "; ".join(
            regressions
        )
